"""Unit tests for the on-disk index format."""

import numpy as np
import pytest

from repro.errors import IndexFormatError
from repro.index.builder import IndexParameters, build_index
from repro.index.statistics import collect_statistics
from repro.index.storage import DiskIndex, read_index, write_index
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def sample_index():
    rng = np.random.default_rng(7)
    records = [
        Sequence(f"s{slot}", rng.integers(0, 4, 200, dtype=np.uint8))
        for slot in range(12)
    ]
    return build_index(records, IndexParameters(interval_length=5))


@pytest.fixture
def index_path(sample_index, tmp_path):
    path = tmp_path / "sample.rpix"
    write_index(sample_index, path)
    return path


class TestRoundTrip:
    def test_bytes_written_match_file(self, sample_index, tmp_path):
        path = tmp_path / "x.rpix"
        written = write_index(sample_index, path)
        assert path.stat().st_size == written

    def test_metadata_preserved(self, sample_index, index_path):
        with read_index(index_path) as disk:
            assert disk.params == sample_index.params
            assert disk.collection.identifiers == sample_index.collection.identifiers
            assert np.array_equal(
                disk.collection.lengths, sample_index.collection.lengths
            )

    def test_every_entry_identical(self, sample_index, index_path):
        with read_index(index_path) as disk:
            assert disk.vocabulary_size == sample_index.vocabulary_size
            for interval in sample_index.interval_ids():
                memory_entry = sample_index.lookup_entry(interval)
                disk_entry = disk.lookup_entry(interval)
                assert disk_entry.df == memory_entry.df
                assert disk_entry.cf == memory_entry.cf
                assert disk_entry.data == memory_entry.data

    def test_postings_decode_identically(self, sample_index, index_path):
        interval = next(iter(sample_index.interval_ids()))
        with read_index(index_path) as disk:
            memory = sample_index.postings(interval)
            from_disk = disk.postings(interval)
        assert [(p.sequence, p.positions.tolist()) for p in memory] == [
            (p.sequence, p.positions.tolist()) for p in from_disk
        ]

    def test_absent_interval_lookup(self, sample_index, index_path):
        missing = max(sample_index.interval_ids()) + 1
        with read_index(index_path) as disk:
            assert disk.lookup_entry(missing) is None

    def test_aggregate_statistics_match(self, sample_index, index_path):
        with read_index(index_path) as disk:
            assert disk.pointer_count == sample_index.pointer_count
            assert disk.compressed_bytes == sample_index.compressed_bytes
            disk_stats = collect_statistics(disk)
        memory_stats = collect_statistics(sample_index)
        assert disk_stats == memory_stats

    def test_to_memory(self, sample_index, index_path):
        with read_index(index_path) as disk:
            rebuilt = disk.to_memory()
        assert rebuilt.vocabulary_size == sample_index.vocabulary_size
        interval = next(iter(sample_index.interval_ids()))
        assert (
            rebuilt.lookup_entry(interval).data
            == sample_index.lookup_entry(interval).data
        )


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpix"
        path.write_bytes(b"")
        with pytest.raises(IndexFormatError, match="empty"):
            DiskIndex(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpix"
        path.write_bytes(b"NOPE" + bytes(64))
        with pytest.raises(IndexFormatError, match="magic"):
            DiskIndex(path)

    def test_bad_version(self, index_path):
        data = bytearray(index_path.read_bytes())
        data[4] = 99
        index_path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="version"):
            DiskIndex(index_path)

    def test_truncated_vocabulary(self, index_path):
        data = index_path.read_bytes()
        index_path.write_bytes(data[: len(data) // 4])
        with pytest.raises(IndexFormatError):
            DiskIndex(index_path)

    def test_truncated_blob(self, index_path):
        data = index_path.read_bytes()
        index_path.write_bytes(data[:-10])
        with pytest.raises(IndexFormatError, match="postings blob"):
            DiskIndex(index_path)

    def test_bad_header_json(self, index_path):
        data = bytearray(index_path.read_bytes())
        data[10:14] = b"\xff\xff\xff\xff"
        index_path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError):
            DiskIndex(index_path)


class TestLifecycle:
    def test_close_is_idempotent(self, index_path):
        disk = read_index(index_path)
        disk.close()
        disk.close()

    def test_context_manager_closes(self, index_path):
        with read_index(index_path) as disk:
            assert disk.vocabulary_size > 0
        # After close the map is gone; lookups would fail loudly rather
        # than silently read stale memory.
        assert disk._map is None

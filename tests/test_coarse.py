"""Unit tests for coarse (index-phase) ranking."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    IndexReader,
    VocabEntry,
    build_index,
)
from repro.index.postings import PostingEntry
from repro.compression import fastunpack
from repro.instrumentation.instruments import Instruments
from repro.search.coarse import (
    CoarseRanker,
    CountScorer,
    DiagonalScorer,
    NormalisedScorer,
    band_hit_counts,
    make_scorer,
)
from repro.sequences.record import Sequence


def seq(identifier: str, text: str) -> Sequence:
    return Sequence.from_text(identifier, text)


@pytest.fixture(scope="module")
def collection():
    rng = np.random.default_rng(31)
    records = [
        Sequence(f"r{slot}", rng.integers(0, 4, 300, dtype=np.uint8))
        for slot in range(30)
    ]
    # Plant: sequence 7 contains the query verbatim; sequence 12 contains
    # a shuffled (non-collinear) version of the query's intervals.
    query = rng.integers(0, 4, 60, dtype=np.uint8)
    planted = records[7].codes.copy()
    planted[100:160] = query
    records[7] = Sequence("r7", planted)
    scrambled = records[12].codes.copy()
    pieces = [query[start : start + 10] for start in range(0, 60, 10)]
    for slot, piece in enumerate(reversed(pieces)):
        scrambled[30 * slot : 30 * slot + 10] = piece
    records[12] = Sequence("r12", scrambled)
    return records, query


@pytest.fixture(scope="module")
def index(collection):
    records, _ = collection
    return build_index(records, IndexParameters(interval_length=8))


class TestMakeScorer:
    def test_known_names(self):
        assert isinstance(make_scorer("count"), CountScorer)
        assert isinstance(make_scorer("normalised"), NormalisedScorer)
        assert isinstance(make_scorer("diagonal"), DiagonalScorer)

    def test_unknown_name(self):
        with pytest.raises(SearchError):
            make_scorer("pagerank")

    def test_diagonal_band_width_validation(self):
        with pytest.raises(SearchError):
            DiagonalScorer(band_width=0)


class TestRanking:
    def test_planted_sequence_ranks_first(self, index, collection):
        _, query = collection
        ranker = CoarseRanker(index, "count")
        candidates = ranker.rank(query, cutoff=5)
        assert candidates[0].ordinal == 7
        assert candidates[0].coarse_score >= 50

    def test_cutoff_limits_candidates(self, index, collection):
        _, query = collection
        ranker = CoarseRanker(index)
        assert len(ranker.rank(query, cutoff=3)) <= 3

    def test_cutoff_validation(self, index, collection):
        _, query = collection
        with pytest.raises(SearchError):
            CoarseRanker(index).rank(query, cutoff=0)

    def test_scores_sorted_descending(self, index, collection):
        _, query = collection
        candidates = CoarseRanker(index).rank(query, cutoff=20)
        scores = [candidate.coarse_score for candidate in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_zero_scores_excluded(self, index):
        # A query of poly-N extracts no intervals at all.
        ranker = CoarseRanker(index)
        no_hits = ranker.rank(np.full(50, 14, dtype=np.uint8), cutoff=10)
        assert no_hits == []

    def test_query_shorter_than_interval(self, index):
        ranker = CoarseRanker(index)
        assert ranker.rank(np.zeros(3, dtype=np.uint8), cutoff=10) == []

    def test_count_scorer_caps_by_query_multiplicity(self):
        # Target has AAAA many times; query contains it once: the score
        # contribution is capped at the query's count.
        records = [seq("many", "A" * 50), seq("once", "AAAATTTT")]
        index = build_index(records, IndexParameters(interval_length=4))
        ranker = CoarseRanker(index, "count")
        candidates = ranker.rank(seq("q", "AAAACCCC").codes, cutoff=5)
        by_ordinal = {c.ordinal: c.coarse_score for c in candidates}
        assert by_ordinal[0] == 1.0
        assert by_ordinal[1] == 1.0


class TestDiagonalVsCount:
    def test_diagonal_scorer_prefers_collinear_hits(self, index, collection):
        """The scrambled sequence shares intervals but not a diagonal,
        so the diagonal scorer separates it from the true match much
        more sharply than raw counts do."""
        _, query = collection
        count_scores = {
            c.ordinal: c.coarse_score
            for c in CoarseRanker(index, "count").rank(query, cutoff=30)
        }
        diagonal_scores = {
            c.ordinal: c.coarse_score
            for c in CoarseRanker(index, DiagonalScorer(band_width=8)).rank(
                query, cutoff=30
            )
        }
        count_margin = count_scores[7] / max(count_scores.get(12, 1.0), 1.0)
        diagonal_margin = diagonal_scores[7] / max(
            diagonal_scores.get(12, 1.0), 1.0
        )
        assert diagonal_margin > count_margin

    def test_diagonal_scorer_requires_positions(self, collection):
        records, query = collection
        bare = build_index(
            records,
            IndexParameters(interval_length=8, include_positions=False),
        )
        ranker = CoarseRanker(bare, "diagonal")
        with pytest.raises(SearchError, match="positions"):
            ranker.rank(query, cutoff=5)


class _HugeOffsetIndex(IndexReader):
    """A hand-built two-interval index with extreme occurrence offsets.

    Sequence 0 carries interval 0 at an offset far outside ``+-2**30``
    — legal for the int64 position arrays, but fatal for the old packed
    ``doc * 2**32 + band`` dedup key, which credited the hit to the
    wrong sequence.
    """

    def __init__(self) -> None:
        self.params = IndexParameters(interval_length=8)
        self.collection = CollectionInfo(
            identifiers=("big0", "big1", "big2"),
            lengths=np.array([100, 100, 100], dtype=np.int64),
        )
        self._postings = {
            0: [
                PostingEntry(0, np.array([16 * 2**32], dtype=np.int64)),
                PostingEntry(2, np.array([4], dtype=np.int64)),
            ],
        }

    def lookup_entry(self, interval_id):
        if interval_id in self._postings:
            return VocabEntry(interval_id, 2, 2, b"")
        return None

    def postings(self, interval_id, entry=None):
        return self._postings[interval_id]

    def docs_counts(self, interval_id, entry=None):
        entries = self._postings.get(interval_id)
        if entries is None:
            return None
        docs = np.array([e.sequence for e in entries], dtype=np.int64)
        counts = np.array([e.count for e in entries], dtype=np.int64)
        return docs, counts

    def interval_ids(self):
        return iter(sorted(self._postings))

    @property
    def vocabulary_size(self):
        return len(self._postings)


class TestBandHitCounts:
    def test_counts_per_doc_band_pair(self):
        docs = np.array([3, 3, 3, 1, 1], dtype=np.int64)
        bands = np.array([5, 5, -2, 5, 5], dtype=np.int64)
        key_docs, key_bands, counts = band_hit_counts(docs, bands)
        assert key_docs.tolist() == [1, 3, 3]
        assert key_bands.tolist() == [5, -2, 5]
        assert counts.tolist() == [2, 1, 2]

    def test_extreme_bands_stay_with_their_doc(self):
        """Bands far outside +-2**30 must not collide or leak into a
        different ordinal (regression: the old packed int64 key did
        both)."""
        docs = np.array([0, 0, 2], dtype=np.int64)
        bands = np.array([2**32, 2**32, -(2**40)], dtype=np.int64)
        key_docs, key_bands, counts = band_hit_counts(docs, bands)
        assert key_docs.tolist() == [0, 2]
        assert key_bands.tolist() == [2**32, -(2**40)]
        assert counts.tolist() == [2, 1]


class TestDiagonalExtremeOffsets:
    def test_huge_offset_credits_the_right_sequence(self):
        """A hit at offset 16*2**32 in sequence 0 used to be credited
        to sequence 1 by the packed dedup key."""
        index = _HugeOffsetIndex()
        scorer = DiagonalScorer(band_width=16)
        scores = scorer.score(
            index,
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            [np.array([0], dtype=np.int64)],
        )
        assert scores.tolist() == [1.0, 0.0, 1.0]


class TestNormalisedScorer:
    def test_long_sequences_are_penalised(self):
        # Same planted motif; the long sequence accumulates the same raw
        # count but must score lower after normalisation.
        motif = "ACGTACGTACGTACGT"
        records = [
            seq("short", motif + "T" * 10),
            seq("long", motif + "T" * 600),
        ]
        index = build_index(records, IndexParameters(interval_length=8))
        ranker = CoarseRanker(index, "normalised")
        candidates = ranker.rank(seq("q", motif).codes, cutoff=5)
        by_ordinal = {c.ordinal: c.coarse_score for c in candidates}
        assert by_ordinal[0] > by_ordinal[1]


class TestKernelTierParity:
    """The decode-kernel tiers must be invisible to ranking."""

    SCORERS = ("count", "idf", "normalised", "diagonal")

    def test_rankings_identical_across_tiers(self, index, collection):
        _, query = collection
        for name in self.SCORERS:
            results = {}
            for tier in ("python", "numpy", "numba"):
                with fastunpack.forced_tier(tier):
                    candidates = CoarseRanker(index, name).rank(
                        query, cutoff=30
                    )
                results[tier] = [
                    (c.ordinal, c.coarse_score) for c in candidates
                ]
            assert results["python"] == results["numpy"], name
            assert results["python"] == results["numba"], name

    def test_decode_counters_agree_across_scorers_and_tiers(
        self, index, collection
    ):
        # One unit definition (see docs/OBSERVABILITY.md): +1 fetch per
        # list, +df gaps per list — whichever scorer, whichever tier.
        _, query = collection
        seen = set()
        for name in ("count", "idf", "normalised"):
            for tier in ("python", "numpy"):
                instruments = Instruments()
                ranker = CoarseRanker(index, name)
                ranker.set_instruments(instruments)
                with fastunpack.forced_tier(tier):
                    ranker.rank(query, cutoff=10)
                counters = instruments.metrics.snapshot()["counters"]
                seen.add(
                    (
                        counters["coarse.postings_fetched"],
                        counters["coarse.dgaps_decoded"],
                    )
                )
        assert len(seen) == 1, seen


class TestIdfSingleLookup:
    def test_one_vocabulary_lookup_per_interval(self):
        records = [
            seq("a", "ACGTACGTAAAACCCC"),
            seq("b", "ACGTTTTTGGGGACGT"),
            seq("c", "CCCCAAAAACGTACGT"),
        ]
        index = build_index(records, IndexParameters(interval_length=4))
        ids = list(index.interval_ids())[:6]
        query_ids = np.array(ids, dtype=np.int64)
        query_counts = np.ones(len(ids), dtype=np.int64)
        groups = [np.array([0], dtype=np.int64) for _ in ids]
        for tier in ("python", "numpy"):
            calls = []
            original = index.lookup_entry
            index.lookup_entry = lambda interval_id: (
                calls.append(interval_id) or original(interval_id)
            )
            try:
                scorer = make_scorer("idf")
                instruments = Instruments()
                scorer.instruments = instruments
                with fastunpack.forced_tier(tier):
                    scorer.score(index, query_ids, query_counts, groups)
            finally:
                del index.lookup_entry
            # The idf weight reuses the entry the decode already
            # resolved: exactly one vocabulary access per interval,
            # not lookup + decode as two separate walks.
            assert len(calls) == len(ids), tier
            counters = instruments.metrics.snapshot()["counters"]
            assert counters["coarse.postings_fetched"] == len(ids)

"""Unit tests for the mutation model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sequences.mutate import MutationModel, divergence


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(WorkloadError):
            MutationModel(substitution_rate=1.5)
        with pytest.raises(WorkloadError):
            MutationModel(deletion_rate=-0.1)

    def test_expected_identity_decreases_with_rates(self):
        mild = MutationModel(0.01, 0.0, 0.0)
        harsh = MutationModel(0.4, 0.05, 0.05)
        assert mild.expected_identity() > harsh.expected_identity()


class TestSubstitutionOnly:
    def test_zero_rates_copy_input(self, rng):
        model = MutationModel(0.0, 0.0, 0.0)
        codes = rng.integers(0, 4, 100, dtype=np.uint8)
        mutated = model.mutate(codes, rng)
        assert np.array_equal(mutated, codes)
        assert mutated is not codes

    def test_length_preserved_without_indels(self, rng):
        model = MutationModel(0.3, 0.0, 0.0)
        codes = rng.integers(0, 4, 500, dtype=np.uint8)
        assert model.mutate(codes, rng).shape == codes.shape

    def test_substitutions_always_change_the_base(self, rng):
        model = MutationModel(1.0, 0.0, 0.0)
        codes = rng.integers(0, 4, 300, dtype=np.uint8)
        mutated = model.mutate(codes, rng)
        assert not (mutated == codes).any()
        assert (mutated < 4).all()

    def test_substitution_rate_is_respected(self, rng):
        model = MutationModel(0.25, 0.0, 0.0)
        codes = rng.integers(0, 4, 20_000, dtype=np.uint8)
        changed = np.count_nonzero(model.mutate(codes, rng) != codes)
        assert 0.2 < changed / codes.shape[0] < 0.3

    def test_wildcards_are_not_substituted(self, rng):
        model = MutationModel(1.0, 0.0, 0.0)
        codes = np.full(50, 14, dtype=np.uint8)  # all N
        assert np.array_equal(model.mutate(codes, rng), codes)


class TestIndels:
    def test_deletions_shorten(self, rng):
        model = MutationModel(0.0, 0.0, 0.5)
        codes = rng.integers(0, 4, 2000, dtype=np.uint8)
        mutated = model.mutate(codes, rng)
        assert 700 < mutated.shape[0] < 1300

    def test_insertions_lengthen(self, rng):
        model = MutationModel(0.0, 0.5, 0.0)
        codes = rng.integers(0, 4, 2000, dtype=np.uint8)
        mutated = model.mutate(codes, rng)
        assert mutated.shape[0] > 2400

    def test_empty_input(self, rng):
        model = MutationModel(0.5, 0.5, 0.5)
        assert model.mutate(np.empty(0, dtype=np.uint8), rng).shape == (0,)

    def test_output_is_valid_codes(self, rng):
        model = MutationModel(0.2, 0.1, 0.1)
        codes = rng.integers(0, 4, 1000, dtype=np.uint8)
        mutated = model.mutate(codes, rng)
        assert (mutated < 4).all()

    def test_determinism_per_generator_state(self):
        model = MutationModel(0.2, 0.05, 0.05)
        codes = np.arange(200, dtype=np.uint8) % 4
        first = model.mutate(codes, np.random.default_rng(5))
        second = model.mutate(codes, np.random.default_rng(5))
        assert np.array_equal(first, second)


class TestDivergence:
    def test_identical_sequences(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert divergence(codes, codes) == 0.0

    def test_completely_different(self):
        first = np.zeros(10, dtype=np.uint8)
        second = np.ones(10, dtype=np.uint8)
        assert divergence(first, second) == 1.0

    def test_empty_vs_nonempty(self):
        assert divergence(np.empty(0, np.uint8), np.ones(3, np.uint8)) == 1.0

    def test_both_empty(self):
        assert divergence(np.empty(0, np.uint8), np.empty(0, np.uint8)) == 0.0

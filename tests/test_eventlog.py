"""Query event log: sampling, slow-query gating, engine wiring.

The audit property that matters most: a query that skipped corrupted
intervals must leave a JSONL record carrying the skip counts, so the
damage is visible after the fact without re-running the query.
"""

import io
import json

import numpy as np
import pytest

from repro.database import Database
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import (
    Instruments,
    QueryEventLog,
    options_digest,
    read_events,
)
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence
from tests.test_corruption_scorers import FaultyIndex

PARAMS = IndexParameters(interval_length=6)


def _records(count=24, length=200, seed=41):
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"e{slot:03d}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


def _query(records, number=0, span=90):
    return Sequence(
        f"q{number}", records[number].codes[20 : 20 + span].copy()
    )


class TestOptionsDigest:
    def test_stable_across_key_order(self):
        assert options_digest({"a": 1, "b": 2}) == options_digest(
            {"b": 2, "a": 1}
        )

    def test_differs_when_an_option_changes(self):
        assert options_digest({"cutoff": 50}) != options_digest(
            {"cutoff": 100}
        )

    def test_short_hex(self):
        digest = options_digest({"engine": "partitioned"})
        assert len(digest) == 12
        int(digest, 16)


class TestQueryEventLog:
    def test_every_event_logged_by_default(self):
        sink = io.StringIO()
        log = QueryEventLog(sink)
        for number in range(4):
            log.emit({"query_id": f"q{number}", "total_seconds": 0.01})
        assert log.seen == 4
        assert log.written == 4
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [line["seq"] for line in lines] == [1, 2, 3, 4]
        assert all(line["schema"] == "repro.event/v1" for line in lines)

    def test_sampling_keeps_every_nth(self):
        sink = io.StringIO()
        log = QueryEventLog(sink, sample_every=3)
        for number in range(10):
            log.emit({"query_id": f"q{number}", "total_seconds": 0.001})
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [line["seq"] for line in lines] == [3, 6, 9]
        assert log.written == 3

    def test_slow_queries_bypass_sampling(self):
        sink = io.StringIO()
        log = QueryEventLog(sink, sample_every=1000, slow_seconds=0.5)
        log.emit({"query_id": "fast", "total_seconds": 0.01})
        log.emit({"query_id": "slow", "total_seconds": 0.9})
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [line["query_id"] for line in lines] == ["slow"]
        assert lines[0]["slow"] is True

    def test_sampling_zero_logs_only_slow(self):
        sink = io.StringIO()
        log = QueryEventLog(sink, sample_every=0, slow_seconds=0.5)
        log.emit({"query_id": "fast", "total_seconds": 0.01})
        log.emit({"query_id": "slow", "total_seconds": 1.0})
        assert log.written == 1

    def test_path_sink_and_read_events(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with QueryEventLog(target) as log:
            log.emit({"query_id": "a", "total_seconds": 0.1})
            log.emit({"query_id": "b", "total_seconds": 0.2})
        events = read_events(target)
        assert [event["query_id"] for event in events] == ["a", "b"]
        assert all("ts" in event for event in events)


class TestEngineEventWiring:
    def test_partitioned_ok_event_fields(self):
        records = _records()
        sink = io.StringIO()
        instruments = Instruments(eventlog=QueryEventLog(sink))
        engine = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=10,
            instruments=instruments,
        )
        engine.search(_query(records), top_k=5)
        (event,) = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert event["engine"] == "partitioned"
        assert event["outcome"] == "ok"
        assert event["query_id"] == "q0"
        assert event["options"] == engine.options_digest
        assert event["candidates"] > 0
        assert event["hits"] > 0
        assert event["coarse_seconds"] > 0
        assert event["fine_seconds"] > 0
        assert event["total_seconds"] >= event["coarse_seconds"]

    def test_corrupted_intervals_recorded_in_event(self):
        records = _records(count=30, length=400, seed=907)
        sink = io.StringIO()
        instruments = Instruments(eventlog=QueryEventLog(sink))
        engine = PartitionedSearchEngine(
            FaultyIndex(build_index(records, IndexParameters(8))),
            MemorySequenceSource(records),
            on_corruption="skip",
            instruments=instruments,
        )
        report = engine.search(records[4].slice(100, 260), top_k=5)
        assert report.quarantined_intervals > 0
        (event,) = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert event["outcome"] == "ok"
        assert (
            event["quarantined_intervals"] == report.quarantined_intervals
        )

    def test_error_outcome_logged_before_raise(self):
        records = _records(count=30, length=400, seed=907)
        sink = io.StringIO()
        instruments = Instruments(eventlog=QueryEventLog(sink))
        engine = PartitionedSearchEngine(
            FaultyIndex(build_index(records, IndexParameters(8))),
            MemorySequenceSource(records),
            on_corruption="raise",
            instruments=instruments,
        )
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError):
            engine.search(records[4].slice(100, 260), top_k=5)
        (event,) = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert event["outcome"] == "error"
        assert "error" in event

    def test_sharded_event_carries_per_shard_detail(self, tmp_path):
        records = _records()
        sink = io.StringIO()
        instruments = Instruments(eventlog=QueryEventLog(sink))
        with Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ) as db:
            db.set_instruments(instruments)
            db.search(_query(records), top_k=5)
        (event,) = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert event["engine"] == "sharded"
        assert event["num_shards"] == 3
        assert [shard["shard"] for shard in event["shards"]] == [0, 1, 2]
        for shard in event["shards"]:
            assert set(shard) >= {
                "coarse_seconds",
                "fine_seconds",
                "coarse_candidates",
                "fine_candidates",
            }

    def test_no_eventlog_means_no_event_building(self):
        records = _records()
        instruments = Instruments()
        assert not instruments.wants_events
        engine = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=10,
            instruments=instruments,
        )
        # Must not raise, and nothing to flush anywhere.
        engine.search(_query(records), top_k=5)


class TestCliEventLog:
    def test_search_eventlog_flag(self, tmp_path):
        from repro.cli import main
        from repro.sequences.fasta import write_fasta
        from repro.index.storage import write_index
        from repro.index.store import write_store

        records = _records()
        index = build_index(records, PARAMS)
        write_index(index, tmp_path / "idx.rpix")
        write_store(records, tmp_path / "store.rpsq")
        write_fasta([_query(records)], tmp_path / "q.fa")
        target = tmp_path / "events.jsonl"
        status = main(
            [
                "search",
                str(tmp_path / "idx.rpix"),
                str(tmp_path / "store.rpsq"),
                str(tmp_path / "q.fa"),
                "--eventlog",
                str(target),
            ]
        )
        assert status == 0
        events = read_events(target)
        assert len(events) == 1
        assert events[0]["outcome"] == "ok"


class TestSinkFailureDrops:
    """A failing sink must never fail the query: the event is dropped
    and counted, nothing propagates."""

    class _BrokenFile:
        def __init__(self, fail_after=0):
            self.fail_after = fail_after
            self.writes = 0
            self.closed = False

        def write(self, text):
            self.writes += 1
            if self.writes > self.fail_after:
                raise OSError(28, "No space left on device")
            return len(text)

        def flush(self):
            pass

    def test_oserror_dropped_and_counted(self):
        sink = self._BrokenFile()
        log = QueryEventLog(sink)
        assert log.emit({"query": "q0"}) is False
        assert log.emit({"query": "q1"}) is False
        assert log.dropped == 2
        assert log.written == 0
        assert log.seen == 2

    def test_recovery_after_transient_failure(self):
        import io

        sink = io.StringIO()
        log = QueryEventLog(sink)
        assert log.emit({"query": "ok"}) is True

        broken = self._BrokenFile(fail_after=0)
        log_broken = QueryEventLog(broken)
        log_broken.emit({"query": "lost"})
        assert log_broken.dropped == 1

    def test_closed_sink_write_is_dropped_not_raised(self, tmp_path):
        log = QueryEventLog(tmp_path / "events.jsonl")
        log.close()
        assert log.emit({"query": "after-close"}) is False
        assert log.dropped == 1

    def test_dropped_counter_mirrored_as_gauge(self):
        from repro.instrumentation.instruments import Instruments

        instruments = Instruments(eventlog=QueryEventLog(self._BrokenFile()))
        instruments.emit_event({"query": "q"})
        snapshot = instruments.metrics.snapshot()
        assert snapshot["gauges"]["eventlog.dropped"] == 1

"""Unit tests for the opt-in postings decode cache."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import read_index, write_index
from repro.sequences.record import Sequence


@pytest.fixture()
def index():
    rng = np.random.default_rng(151)
    records = [
        Sequence(f"dc{slot}", rng.integers(0, 4, 200, dtype=np.uint8))
        for slot in range(15)
    ]
    return build_index(records, IndexParameters(interval_length=6))


class TestDecodeCache:
    def test_validation(self, index):
        with pytest.raises(IndexParameterError):
            index.enable_decode_cache(0)

    def test_cached_results_equal_uncached(self, index):
        intervals = list(index.interval_ids())[:50]
        plain = {i: index.docs_counts(i) for i in intervals}
        index.enable_decode_cache(100)
        warm = {i: index.docs_counts(i) for i in intervals}
        again = {i: index.docs_counts(i) for i in intervals}
        for interval in intervals:
            assert plain[interval][0].tolist() == warm[interval][0].tolist()
            assert again[interval][1].tolist() == warm[interval][1].tolist()

    def test_cache_hits_return_same_object(self, index):
        index.enable_decode_cache(10)
        interval = next(iter(index.interval_ids()))
        first = index.docs_counts(interval)
        second = index.docs_counts(interval)
        assert first is second

    def test_eviction_respects_limit(self, index):
        index.enable_decode_cache(3)
        intervals = list(index.interval_ids())[:10]
        for interval in intervals:
            index.docs_counts(interval)
        assert len(index._decode_cache) == 3

    def test_lru_keeps_recently_used(self, index):
        index.enable_decode_cache(2)
        intervals = list(index.interval_ids())[:3]
        index.docs_counts(intervals[0])
        index.docs_counts(intervals[1])
        index.docs_counts(intervals[0])  # touch 0 so 1 is evicted next
        index.docs_counts(intervals[2])
        assert intervals[0] in index._decode_cache
        assert intervals[1] not in index._decode_cache

    def test_disable_drops_cache(self, index):
        index.enable_decode_cache(10)
        index.docs_counts(next(iter(index.interval_ids())))
        index.disable_decode_cache()
        assert getattr(index, "_decode_cache") is None

    def test_missing_interval_not_cached(self, index):
        index.enable_decode_cache(10)
        assert index.docs_counts(4**6 + 5) is None
        assert len(index._decode_cache) == 0

    def test_works_on_disk_index(self, index, tmp_path):
        path = tmp_path / "c.rpix"
        write_index(index, path)
        with read_index(path) as disk:
            disk.enable_decode_cache(50)
            interval = next(iter(disk.interval_ids()))
            first = disk.docs_counts(interval)
            assert disk.docs_counts(interval) is first

    def test_cached_search_results_unchanged(self, index):
        from repro.index.store import MemorySequenceSource
        from repro.search.engine import PartitionedSearchEngine

        rng = np.random.default_rng(151)
        records = [
            Sequence(f"dc{slot}", rng.integers(0, 4, 200, dtype=np.uint8))
            for slot in range(15)
        ]
        source = MemorySequenceSource(records)
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        query = records[6].codes[:120]
        cold = engine.search(query, top_k=5)
        index.enable_decode_cache(1000)
        engine.search(query, top_k=5)  # warm the cache
        warm = engine.search(query, top_k=5)
        assert [(h.ordinal, h.score) for h in cold.hits] == [
            (h.ordinal, h.score) for h in warm.hits
        ]

"""Unit tests for ungapped seed extension."""

import numpy as np
import pytest

from repro.align.extension import extend_seed
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet

SCHEME = ScoringScheme(match=1, mismatch=-1, gap=-2)


class TestValidation:
    def test_seed_outside_query(self):
        with pytest.raises(AlignmentError):
            extend_seed(
                alphabet.encode("ACGT"), alphabet.encode("ACGTACGT"),
                2, 0, 4, SCHEME,
            )

    def test_seed_outside_target(self):
        with pytest.raises(AlignmentError):
            extend_seed(
                alphabet.encode("ACGTACGT"), alphabet.encode("ACGT"),
                0, 2, 4, SCHEME,
            )

    def test_negative_x_drop(self):
        with pytest.raises(AlignmentError):
            extend_seed(
                alphabet.encode("ACGT"), alphabet.encode("ACGT"),
                0, 0, 4, SCHEME, x_drop=-1,
            )


class TestExtension:
    def test_identical_sequences_extend_fully(self):
        codes = alphabet.encode("ACGTACGTACGT")
        extension = extend_seed(codes, codes, 4, 4, 4, SCHEME)
        assert extension.score == 12
        assert extension.query_start == 0
        assert extension.query_end == 12
        assert extension.diagonal == 0

    def test_extension_stops_at_mismatch_wall(self):
        query = alphabet.encode("ACGTACGT" + "AAAA")
        target = alphabet.encode("ACGTACGT" + "TTTT")
        extension = extend_seed(query, target, 0, 0, 8, SCHEME, x_drop=2)
        assert extension.query_end <= 11
        assert extension.score >= 8 - 2

    def test_left_extension(self):
        query = alphabet.encode("CCCCACGT")
        target = alphabet.encode("CCCCACGT")
        extension = extend_seed(query, target, 4, 4, 4, SCHEME)
        assert extension.query_start == 0
        assert extension.score == 8

    def test_tolerates_isolated_mismatch(self):
        # One mismatch inside a long match should be crossed when the
        # x-drop allows it.
        query = alphabet.encode("ACGTACGTA" + "A" + "GGGGGGGG")
        target = alphabet.encode("ACGTACGTA" + "C" + "GGGGGGGG")
        extension = extend_seed(query, target, 0, 0, 9, SCHEME, x_drop=5)
        assert extension.query_end == 18
        assert extension.score == 17 - 1

    def test_small_x_drop_stops_at_mismatch(self):
        query = alphabet.encode("ACGTACGTA" + "A" + "GGGGGGGG")
        target = alphabet.encode("ACGTACGTA" + "C" + "GGGGGGGG")
        extension = extend_seed(query, target, 0, 0, 9, SCHEME, x_drop=0)
        assert extension.query_end == 9
        assert extension.score == 9

    def test_diagonal_is_offset_difference(self):
        query = alphabet.encode("AAACGTACGT")
        target = alphabet.encode("CGTACGT")
        extension = extend_seed(query, target, 3, 0, 7, SCHEME)
        assert extension.diagonal == -3
        assert extension.score == 7

    def test_wildcards_count_as_mismatches(self):
        query = alphabet.encode("ACGTNNNN")
        target = alphabet.encode("ACGTNNNN")
        extension = extend_seed(query, target, 0, 0, 4, SCHEME, x_drop=1)
        assert extension.score == 4
        assert extension.query_end <= 6

    def test_length_property(self):
        codes = alphabet.encode("ACGTACGT")
        extension = extend_seed(codes, codes, 2, 2, 4, SCHEME)
        assert extension.length == extension.query_end - extension.query_start

"""Unit tests for FASTA reading and writing."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FastaFormatError
from repro.sequences.fasta import (
    format_fasta,
    parse_header,
    read_fasta,
    read_fasta_text,
    write_fasta,
)
from repro.sequences.record import Sequence


class TestParseHeader:
    def test_identifier_only(self):
        assert parse_header(">seq1") == ("seq1", "")

    def test_identifier_and_description(self):
        assert parse_header(">seq1 homo sapiens mRNA") == (
            "seq1",
            "homo sapiens mRNA",
        )

    def test_empty_header_raises(self):
        with pytest.raises(FastaFormatError):
            parse_header("> ")


class TestRead:
    def test_multiline_record(self):
        records = read_fasta_text(">s1\nACGT\nACGT\n")
        assert len(records) == 1
        assert records[0].text == "ACGTACGT"

    def test_multiple_records(self):
        records = read_fasta_text(">a\nAC\n>b desc\nGT\n")
        assert [r.identifier for r in records] == ["a", "b"]
        assert records[1].description == "desc"

    def test_blank_lines_ignored(self):
        records = read_fasta_text(">a\n\nAC\n\n\nGT\n")
        assert records[0].text == "ACGT"

    def test_comment_lines_ignored(self):
        records = read_fasta_text(">a\n;legacy comment\nACGT\n")
        assert records[0].text == "ACGT"

    def test_lowercase_residues_folded(self):
        assert read_fasta_text(">a\nacgt\n")[0].text == "ACGT"

    def test_data_before_header_raises(self):
        with pytest.raises(FastaFormatError, match="before first header"):
            read_fasta_text("ACGT\n>a\nAC\n")

    def test_empty_record_raises(self):
        with pytest.raises(FastaFormatError, match="no residues"):
            read_fasta_text(">a\n>b\nAC\n")

    def test_trailing_empty_record_raises(self):
        with pytest.raises(FastaFormatError, match="no residues"):
            read_fasta_text(">a\nAC\n>b\n")

    def test_invalid_character_names_record(self):
        with pytest.raises(FastaFormatError, match="'bad'"):
            read_fasta_text(">bad\nACQT\n")

    def test_empty_input_yields_nothing(self):
        assert read_fasta_text("") == []

    def test_reads_from_stream(self):
        stream = io.StringIO(">a\nACGT\n")
        assert [r.identifier for r in read_fasta(stream)] == ["a"]

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "x.fasta"
        path.write_text(">a\nACGT\n")
        assert [r.text for r in read_fasta(path)] == ["ACGT"]


class TestWrite:
    def test_wraps_lines(self):
        record = Sequence.from_text("a", "ACGT" * 5)
        text = format_fasta([record], line_width=8)
        assert text == ">a\nACGTACGT\nACGTACGT\nACGT\n"

    def test_description_in_header(self):
        record = Sequence.from_text("a", "ACGT", "some gene")
        assert format_fasta([record]).startswith(">a some gene\n")

    def test_invalid_line_width(self):
        with pytest.raises(ValueError):
            format_fasta([], line_width=0)

    def test_write_returns_count(self, tmp_path):
        records = [Sequence.from_text(f"s{i}", "ACGT") for i in range(3)]
        assert write_fasta(records, tmp_path / "x.fasta") == 3


identifiers = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=">; "),
    min_size=1,
    max_size=12,
)
bodies = st.text(alphabet="ACGTN", min_size=1, max_size=150)


class TestRoundTrip:
    @given(st.lists(st.tuples(identifiers, bodies), min_size=1, max_size=8))
    def test_write_then_read_preserves_records(self, pairs):
        records = [
            Sequence.from_text(f"{identifier}_{slot}", body)
            for slot, (identifier, body) in enumerate(pairs)
        ]
        parsed = read_fasta_text(format_fasta(records))
        assert parsed == records

"""Unit and property tests for chunked index construction and merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters, build_index
from repro.index.merge import build_index_chunked, merge_indexes
from repro.sequences.record import Sequence


def random_records(seed: int, count: int, length: int = 150) -> list[Sequence]:
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"m{seed}_{slot}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


def assert_identical(first, second) -> None:
    assert first.params == second.params
    assert first.collection.identifiers == second.collection.identifiers
    assert np.array_equal(first.collection.lengths, second.collection.lengths)
    assert first.vocabulary_size == second.vocabulary_size
    for interval in first.interval_ids():
        this = first.lookup_entry(interval)
        that = second.lookup_entry(interval)
        assert that is not None, interval
        assert (this.df, this.cf, this.data) == (that.df, that.cf, that.data)


class TestMerge:
    def test_empty_merge_rejected(self):
        with pytest.raises(IndexParameterError):
            merge_indexes([])

    def test_parameter_mismatch_rejected(self):
        records = random_records(1, 4)
        first = build_index(records, IndexParameters(interval_length=6))
        second = build_index(records, IndexParameters(interval_length=8))
        with pytest.raises(IndexParameterError, match="different parameters"):
            merge_indexes([first, second])

    def test_merge_of_one_is_identity(self):
        records = random_records(2, 5)
        index = build_index(records, IndexParameters(interval_length=6))
        assert_identical(merge_indexes([index]), index)

    def test_two_way_merge_equals_direct_build(self):
        first_half = random_records(3, 7)
        second_half = random_records(4, 5)
        params = IndexParameters(interval_length=7)
        merged = merge_indexes(
            [build_index(first_half, params), build_index(second_half, params)]
        )
        direct = build_index(first_half + second_half, params)
        assert_identical(merged, direct)

    def test_three_way_merge_with_uneven_parts(self):
        parts_records = [random_records(s, n) for s, n in ((5, 3), (6, 9), (7, 1))]
        params = IndexParameters(interval_length=6)
        merged = merge_indexes([build_index(r, params) for r in parts_records])
        direct = build_index(sum(parts_records, []), params)
        assert_identical(merged, direct)

    def test_merge_without_positions(self):
        params = IndexParameters(interval_length=6, include_positions=False)
        first = random_records(8, 4)
        second = random_records(9, 4)
        merged = merge_indexes(
            [build_index(first, params), build_index(second, params)]
        )
        direct = build_index(first + second, params)
        assert_identical(merged, direct)


class TestMergeEqualsSingleBuild:
    """Merging per-part indexes must reproduce one build over the
    concatenated collection — posting-for-posting (the property the
    sharded build relies on)."""

    def test_merge_index_files_equals_direct_build(self, tmp_path):
        from repro.index.merge import merge_index_files
        from repro.index.storage import read_index, write_index

        parts_records = [random_records(s, n) for s, n in ((21, 6), (22, 4), (23, 8))]
        params = IndexParameters(interval_length=6)
        paths = []
        for number, part in enumerate(parts_records):
            path = tmp_path / f"part{number}.rpix"
            write_index(build_index(part, params), path)
            paths.append(str(path))
        output = tmp_path / "merged.rpix"
        merge_index_files(paths, str(output))
        direct = build_index(sum(parts_records, []), params)
        with read_index(output) as merged:
            assert_identical(merged, direct)

    def test_merge_indexes_equals_direct_build_many_parts(self):
        parts_records = [random_records(30 + s, 3, length=90) for s in range(5)]
        params = IndexParameters(interval_length=5)
        merged = merge_indexes(
            [build_index(part, params) for part in parts_records]
        )
        direct = build_index(sum(parts_records, []), params)
        assert_identical(merged, direct)


class TestChunkedBuild:
    def test_chunk_size_validation(self):
        with pytest.raises(IndexParameterError):
            build_index_chunked(random_records(1, 3), chunk_size=0)

    def test_empty_collection_rejected(self):
        with pytest.raises(IndexParameterError):
            build_index_chunked([])

    def test_accepts_lazy_iterables(self):
        records = random_records(10, 6)
        index = build_index_chunked(
            iter(records), IndexParameters(interval_length=6), chunk_size=2
        )
        assert index.collection.num_sequences == 6

    @settings(max_examples=15, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=12),
        chunk_size=st.integers(min_value=1, max_value=13),
    )
    def test_chunked_equals_direct_for_any_chunking(self, count, chunk_size):
        records = random_records(11, count, length=60)
        params = IndexParameters(interval_length=5)
        chunked = build_index_chunked(records, params, chunk_size=chunk_size)
        direct = build_index(records, params)
        assert_identical(chunked, direct)

    def test_search_on_merged_index(self):
        from repro.index.store import MemorySequenceSource
        from repro.search.engine import PartitionedSearchEngine

        records = random_records(12, 30, length=200)
        index = build_index_chunked(
            records, IndexParameters(interval_length=8), chunk_size=7
        )
        engine = PartitionedSearchEngine(
            index, MemorySequenceSource(records), coarse_cutoff=10
        )
        query = records[17].codes[40:160]
        assert engine.search(query).best().ordinal == 17

"""Unit tests for the shared seed tables."""

import numpy as np
import pytest

from repro.index.intervals import IntervalExtractor, interval_id
from repro.index.store import MemorySequenceSource
from repro.search.seeds import SeedTable, query_seed_groups
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def source():
    records = [
        Sequence.from_text("a", "ACGTACGTAA"),
        Sequence.from_text("b", "TTTTACGTTT"),
        Sequence.from_text("c", "GGGG"),
    ]
    return MemorySequenceSource(records)


class TestSeedTable:
    def test_positions_of_known_kmer(self, source):
        table = SeedTable(source, seed_length=4)
        acgt = interval_id("ACGT")
        assert table.positions_of(0, acgt).tolist() == [0, 4]
        assert table.positions_of(1, acgt).tolist() == [4]
        assert table.positions_of(2, acgt).tolist() == []

    def test_shared_with_returns_slot_and_offsets(self, source):
        table = SeedTable(source, seed_length=4)
        query_ids, groups = query_seed_groups(
            Sequence.from_text("q", "ACGTAC").codes, 4
        )
        shared = dict(table.shared_with(0, query_ids))
        acgt_slot = int(np.searchsorted(query_ids, interval_id("ACGT")))
        assert shared[acgt_slot].tolist() == [0, 4]

    def test_shared_with_empty_query(self, source):
        table = SeedTable(source, seed_length=4)
        assert table.shared_with(0, np.empty(0, dtype=np.int64)) == []

    def test_table_covers_all_sequences(self, source):
        table = SeedTable(source, seed_length=4)
        assert len(table) == 3

    def test_short_sequence_has_no_seeds(self, source):
        table = SeedTable(source, seed_length=6)
        assert table.positions_of(2, 0).tolist() == []


class TestQuerySeedGroups:
    def test_groups_match_extractor(self):
        codes = Sequence.from_text("q", "AAAACGTAAAA").codes
        ids, groups = query_seed_groups(codes, 4)
        extractor = IntervalExtractor(4)
        raw_ids, raw_positions = extractor.extract(codes)
        for packed, group in zip(ids, groups):
            expected = raw_positions[raw_ids == packed]
            assert group.tolist() == expected.tolist()

    def test_repeated_kmers_grouped(self):
        codes = Sequence.from_text("q", "ACGTACGT").codes
        ids, groups = query_seed_groups(codes, 4)
        slot = int(np.searchsorted(ids, interval_id("ACGT")))
        assert groups[slot].tolist() == [0, 4]

    def test_empty_query(self):
        ids, groups = query_seed_groups(np.empty(0, dtype=np.uint8), 4)
        assert ids.shape == (0,)
        assert groups == []

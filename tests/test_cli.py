"""Unit tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def workspace(tmp_path):
    """A generated collection + queries on disk."""
    collection = tmp_path / "coll.fasta"
    queries = tmp_path / "q.fasta"
    status = main(
        [
            "generate",
            "--families", "3",
            "--family-size", "3",
            "--background", "20",
            "--mean-length", "300",
            "--seed", "5",
            "-o", str(collection),
            "--queries", str(queries),
            "--num-queries", "2",
            "--query-length", "120",
        ]
    )
    assert status == 0
    return tmp_path, collection, queries


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.fasta"])
        assert args.families == 20
        assert args.handler is not None


class TestGenerate(object):
    def test_writes_collection_and_queries(self, workspace, capsys):
        _, collection, queries = workspace
        assert collection.exists()
        assert queries.exists()
        text = collection.read_text()
        assert text.startswith(">")
        assert sum(1 for line in text.splitlines() if line.startswith(">")) == 29


class TestIndexAndStats:
    def test_index_then_stats(self, workspace, capsys):
        tmp_path, collection, _ = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        assert main(
            [
                "index", str(collection),
                "-o", str(index_path),
                "--store", str(store_path),
                "-k", "8",
            ]
        ) == 0
        assert index_path.exists()
        assert store_path.exists()
        capsys.readouterr()
        assert main(["stats", str(index_path)]) == 0
        output = capsys.readouterr().out
        assert "vocabulary size" in output
        assert "bits per pointer" in output

    def test_missing_collection_fails_cleanly(self, tmp_path, capsys):
        status = main(
            ["index", str(tmp_path / "nope.fasta"), "-o", str(tmp_path / "x")]
        )
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestSearch:
    def test_search_prints_ranked_answers(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        capsys.readouterr()
        status = main(
            ["search", str(index_path), str(store_path), str(queries),
             "--cutoff", "10", "--top", "3"]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "query q0000" in output
        assert "score=" in output
        # The top answer of a family query is a family member.
        first_answer = output.splitlines()[1]
        assert "fam" in first_answer

    def test_search_rejects_corrupt_index(self, workspace, capsys):
        tmp_path, _, queries = workspace
        bogus = tmp_path / "bogus.rpix"
        bogus.write_bytes(b"not an index at all")
        status = main(["search", str(bogus), str(bogus), str(queries)])
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestDatabaseCommands:
    def test_create_info_search(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        db_path = tmp_path / "demo.db"
        assert main(
            ["db-create", str(collection), "-o", str(db_path), "-k", "8"]
        ) == 0
        created = capsys.readouterr().out
        assert "29 sequences" in created
        assert main(["db-info", str(db_path)]) == 0
        capsys.readouterr()
        assert main(
            ["db-search", str(db_path), str(queries), "--top", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "query q0000" in output
        assert "fam" in output

    def test_db_create_refuses_overwrite(self, workspace, capsys):
        tmp_path, collection, _ = workspace
        db_path = tmp_path / "dup.db"
        assert main(["db-create", str(collection), "-o", str(db_path)]) == 0
        capsys.readouterr()
        assert main(["db-create", str(collection), "-o", str(db_path)]) == 1
        assert "already holds" in capsys.readouterr().err

    def test_db_info_missing(self, tmp_path, capsys):
        assert main(["db-info", str(tmp_path / "nope.db")]) == 1
        assert "error" in capsys.readouterr().err


class TestOracle:
    def test_oracle_reports_overlap_and_speedup(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        capsys.readouterr()
        status = main(
            ["oracle", str(index_path), str(store_path), str(queries),
             "--cutoff", "10", "--top", "3"]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "mean overlap@3" in output
        assert "mean speedup" in output

    def test_oracle_with_empty_queries(self, workspace, tmp_path, capsys):
        workdir, collection, _ = workspace
        index_path = workdir / "c2.rpix"
        store_path = workdir / "c2.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        capsys.readouterr()
        status = main(
            ["oracle", str(index_path), str(store_path), str(empty)]
        )
        assert status == 1


class TestAlign:
    def test_pretty_alignment(self, tmp_path, capsys):
        first = tmp_path / "a.fasta"
        second = tmp_path / "b.fasta"
        first.write_text(">a\nACGTACGTAC\n")
        second.write_text(">b\nTTACGTACGTACTT\n")
        assert main(["align", str(first), str(second)]) == 0
        output = capsys.readouterr().out
        assert "a vs b" in output
        assert "score=10" in output


class TestServingCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "some.db"])
        assert args.deadline_ms == 2000.0
        assert args.max_in_flight == 4
        assert args.shard_attempts == 3
        assert args.handler is not None

    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.shards == 3
        assert args.fault_shard is None
        assert args.mode == "closed"
        assert not args.fail_on_5xx
        assert args.handler is not None

    def test_loadgen_url_mode_requires_queries(self, capsys):
        status = main(["loadgen", "--url", "http://127.0.0.1:1"])
        assert status != 0
        assert "queries" in capsys.readouterr().err.lower()

    def test_loadgen_self_contained_benchmark(self, tmp_path, capsys):
        output = tmp_path / "BENCH_serving.json"
        status = main(
            [
                "loadgen",
                "--shards", "3",
                "--fault-shard", "1",
                "--clients", "2",
                "--duration", "0.5",
                "--deadline-ms", "400",
                "--fail-on-5xx",
                "--expect-degraded",
                "-o", str(output),
            ]
        )
        assert status == 0
        assert output.exists()
        import json as _json

        document = _json.loads(output.read_text())
        assert document["suite"] == "serving"
        assert document["metrics"]["serving.server_errors"]["value"] == 0
        out = capsys.readouterr().out
        assert "requests" in out


class TestBenchCompareWarnings:
    def test_compare_warns_on_one_sided_metrics(self, tmp_path, capsys):
        import json as _json

        def write_document(path, metrics):
            _json.dump(
                {
                    "schema": "repro.bench/v1",
                    "suite": "t",
                    "meta": {},
                    "metrics": {
                        name: {"value": value, "unit": "", "direction": "lower"}
                        for name, value in metrics.items()
                    },
                },
                path.open("w"),
            )

        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        write_document(baseline, {"kept_ms": 10.0, "gone_ms": 5.0})
        write_document(current, {"kept_ms": 10.0, "new_ms": 7.0})
        status = main(
            ["bench", "--compare", str(baseline), str(current)]
        )
        assert status == 0
        err = capsys.readouterr().err
        assert "gone_ms" in err and "dropped or renamed" in err
        assert "new_ms" in err and "not the baseline" in err

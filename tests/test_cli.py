"""Unit tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def workspace(tmp_path):
    """A generated collection + queries on disk."""
    collection = tmp_path / "coll.fasta"
    queries = tmp_path / "q.fasta"
    status = main(
        [
            "generate",
            "--families", "3",
            "--family-size", "3",
            "--background", "20",
            "--mean-length", "300",
            "--seed", "5",
            "-o", str(collection),
            "--queries", str(queries),
            "--num-queries", "2",
            "--query-length", "120",
        ]
    )
    assert status == 0
    return tmp_path, collection, queries


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.fasta"])
        assert args.families == 20
        assert args.handler is not None


class TestGenerate(object):
    def test_writes_collection_and_queries(self, workspace, capsys):
        _, collection, queries = workspace
        assert collection.exists()
        assert queries.exists()
        text = collection.read_text()
        assert text.startswith(">")
        assert sum(1 for line in text.splitlines() if line.startswith(">")) == 29


class TestIndexAndStats:
    def test_index_then_stats(self, workspace, capsys):
        tmp_path, collection, _ = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        assert main(
            [
                "index", str(collection),
                "-o", str(index_path),
                "--store", str(store_path),
                "-k", "8",
            ]
        ) == 0
        assert index_path.exists()
        assert store_path.exists()
        capsys.readouterr()
        assert main(["stats", str(index_path)]) == 0
        output = capsys.readouterr().out
        assert "vocabulary size" in output
        assert "bits per pointer" in output

    def test_missing_collection_fails_cleanly(self, tmp_path, capsys):
        status = main(
            ["index", str(tmp_path / "nope.fasta"), "-o", str(tmp_path / "x")]
        )
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestSearch:
    def test_search_prints_ranked_answers(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        capsys.readouterr()
        status = main(
            ["search", str(index_path), str(store_path), str(queries),
             "--cutoff", "10", "--top", "3"]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "query q0000" in output
        assert "score=" in output
        # The top answer of a family query is a family member.
        first_answer = output.splitlines()[1]
        assert "fam" in first_answer

    def test_search_rejects_corrupt_index(self, workspace, capsys):
        tmp_path, _, queries = workspace
        bogus = tmp_path / "bogus.rpix"
        bogus.write_bytes(b"not an index at all")
        status = main(["search", str(bogus), str(bogus), str(queries)])
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestDatabaseCommands:
    def test_create_info_search(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        db_path = tmp_path / "demo.db"
        assert main(
            ["db-create", str(collection), "-o", str(db_path), "-k", "8"]
        ) == 0
        created = capsys.readouterr().out
        assert "29 sequences" in created
        assert main(["db-info", str(db_path)]) == 0
        capsys.readouterr()
        assert main(
            ["db-search", str(db_path), str(queries), "--top", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "query q0000" in output
        assert "fam" in output

    def test_db_create_refuses_overwrite(self, workspace, capsys):
        tmp_path, collection, _ = workspace
        db_path = tmp_path / "dup.db"
        assert main(["db-create", str(collection), "-o", str(db_path)]) == 0
        capsys.readouterr()
        assert main(["db-create", str(collection), "-o", str(db_path)]) == 1
        assert "already holds" in capsys.readouterr().err

    def test_db_info_missing(self, tmp_path, capsys):
        assert main(["db-info", str(tmp_path / "nope.db")]) == 1
        assert "error" in capsys.readouterr().err


class TestOracle:
    def test_oracle_reports_overlap_and_speedup(self, workspace, capsys):
        tmp_path, collection, queries = workspace
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        capsys.readouterr()
        status = main(
            ["oracle", str(index_path), str(store_path), str(queries),
             "--cutoff", "10", "--top", "3"]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "mean overlap@3" in output
        assert "mean speedup" in output

    def test_oracle_with_empty_queries(self, workspace, tmp_path, capsys):
        workdir, collection, _ = workspace
        index_path = workdir / "c2.rpix"
        store_path = workdir / "c2.rpsq"
        main(["index", str(collection), "-o", str(index_path),
              "--store", str(store_path)])
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        capsys.readouterr()
        status = main(
            ["oracle", str(index_path), str(store_path), str(empty)]
        )
        assert status == 1


class TestAlign:
    def test_pretty_alignment(self, tmp_path, capsys):
        first = tmp_path / "a.fasta"
        second = tmp_path / "b.fasta"
        first.write_text(">a\nACGTACGTAC\n")
        second.write_text(">b\nTTACGTACGTACTT\n")
        assert main(["align", str(first), str(second)]) == 0
        output = capsys.readouterr().out
        assert "a vs b" in output
        assert "score=10" in output

"""Unit and property tests for traceback alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.pairwise import MAX_TRACEBACK_CELLS, Alignment, local_align
from repro.align.reference import smith_waterman_score
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet

short_codes = st.text(alphabet="ACGTN", min_size=0, max_size=40).map(
    alphabet.encode
)


def check_alignment_consistency(
    alignment: Alignment,
    query: np.ndarray,
    target: np.ndarray,
    scheme: ScoringScheme,
) -> None:
    """The aligned strings must re-derive the reported score and spans."""
    gapless_query = alignment.aligned_query.replace("-", "")
    gapless_target = alignment.aligned_target.replace("-", "")
    assert gapless_query == alphabet.decode(
        query[alignment.query_start : alignment.query_end]
    )
    assert gapless_target == alphabet.decode(
        target[alignment.target_start : alignment.target_end]
    )
    score = 0
    for first, second in zip(alignment.aligned_query, alignment.aligned_target):
        if first == "-" or second == "-":
            score += scheme.gap
        else:
            score += scheme.score_pair(
                alphabet.IUPAC_ALPHABET.index(first),
                alphabet.IUPAC_ALPHABET.index(second),
            )
    assert score == alignment.score


class TestKnownAlignments:
    def test_perfect_match(self):
        codes = alphabet.encode("GATTACA")
        alignment = local_align(codes, codes)
        assert alignment.score == 7
        assert alignment.aligned_query == "GATTACA"
        assert alignment.identity == 1.0
        assert alignment.gaps == 0

    def test_substring_match(self):
        query = alphabet.encode("ACGT")
        target = alphabet.encode("TTACGTTT")
        alignment = local_align(query, target)
        assert alignment.score == 4
        assert alignment.target_start == 2
        assert alignment.target_end == 6

    def test_gap_in_alignment(self):
        scheme = ScoringScheme(match=2, mismatch=-3, gap=-1)
        query = alphabet.encode("ACGTACGT")
        target = alphabet.encode("ACGTTACGT")  # one inserted T
        alignment = local_align(query, target, scheme)
        assert alignment.score == 2 * 8 - 1
        assert alignment.gaps == 1

    def test_no_similarity_gives_empty_alignment(self):
        alignment = local_align(
            alphabet.encode("AAAA"), alphabet.encode("TTTT")
        )
        assert alignment.score == 0
        assert alignment.length == 0
        assert alignment.identity == 0.0

    def test_midline(self):
        query = alphabet.encode("ACGT")
        target = alphabet.encode("AGGT")
        alignment = local_align(query, target)
        if alignment.length == 4:
            assert alignment.midline() == "| ||"

    def test_pretty_contains_coordinates(self):
        codes = alphabet.encode("ACGTACGT")
        text = local_align(codes, codes).pretty()
        assert "score=8" in text
        assert "Q ACGTACGT" in text


class TestAgainstReference:
    @given(query=short_codes, target=short_codes)
    @settings(max_examples=120, deadline=None)
    def test_score_matches_reference(self, query, target):
        scheme = ScoringScheme()
        alignment = local_align(query, target, scheme)
        assert alignment.score == smith_waterman_score(query, target, scheme)

    @given(query=short_codes, target=short_codes)
    @settings(max_examples=120, deadline=None)
    def test_traceback_is_self_consistent(self, query, target):
        scheme = ScoringScheme(match=2, mismatch=-1, gap=-3)
        alignment = local_align(query, target, scheme)
        check_alignment_consistency(alignment, query, target, scheme)


class TestLimits:
    def test_oversized_matrix_rejected(self):
        scheme = ScoringScheme()
        side = int(MAX_TRACEBACK_CELLS**0.5) + 10
        big = np.zeros(side, dtype=np.uint8)
        with pytest.raises(AlignmentError, match="cells"):
            local_align(big, big, scheme)

    def test_empty_inputs(self):
        alignment = local_align(np.empty(0, np.uint8), alphabet.encode("ACGT"))
        assert alignment.score == 0

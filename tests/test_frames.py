"""Unit tests for frame ranking and frame-restricted fine search."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.search.frames import FrameFineSearcher, FrameRanker
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(91)
    records = [
        Sequence(f"fr{slot}", rng.integers(0, 4, 800, dtype=np.uint8))
        for slot in range(40)
    ]
    # The query is a window deep inside sequence 13.
    query = records[13].codes[500:680].copy()
    index = build_index(records, IndexParameters(interval_length=8))
    return records, MemorySequenceSource(records), index, query


class TestFrameRanker:
    def test_requires_positions(self, setup):
        records, _, _, _ = setup
        bare = build_index(
            records, IndexParameters(interval_length=8, include_positions=False)
        )
        with pytest.raises(SearchError, match="positions"):
            FrameRanker(bare)

    def test_parameter_validation(self, setup):
        _, _, index, _ = setup
        with pytest.raises(SearchError):
            FrameRanker(index, band_width=0)
        with pytest.raises(SearchError):
            FrameRanker(index, margin=-1)
        with pytest.raises(SearchError):
            FrameRanker(index).rank(np.zeros(20, dtype=np.uint8), 0)

    def test_frame_covers_the_true_region(self, setup):
        _, _, index, query = setup
        candidates = FrameRanker(index).rank(query, cutoff=3)
        best = candidates[0]
        assert best.ordinal == 13
        # The match lives at [500, 680); the frame must contain it.
        assert best.target_start <= 500
        assert best.target_end >= 680

    def test_frames_clipped_to_sequence(self, setup):
        _, _, index, query = setup
        for candidate in FrameRanker(index).rank(query, cutoff=10):
            length = int(index.collection.lengths[candidate.ordinal])
            assert 0 <= candidate.target_start < candidate.target_end <= length

    def test_frames_are_much_smaller_than_sequences(self, setup):
        _, _, index, query = setup
        ranker = FrameRanker(index, margin=32)
        for candidate in ranker.rank(query, cutoff=5):
            assert candidate.width <= len(query) + 200

    def test_cutoff_respected(self, setup):
        _, _, index, query = setup
        assert len(FrameRanker(index).rank(query, cutoff=2)) <= 2

    def test_no_intervals_no_candidates(self, setup):
        _, _, index, _ = setup
        wildcards = np.full(50, 14, dtype=np.uint8)
        assert FrameRanker(index).rank(wildcards, cutoff=5) == []


class TestFrameFineSearcher:
    def test_frame_alignment_matches_whole_sequence(self, setup):
        _, source, index, query = setup
        candidates = FrameRanker(index).rank(query, cutoff=5)
        hits = FrameFineSearcher(source).align_frames(query, candidates)
        assert hits[0].ordinal == 13
        assert hits[0].score == 180  # the planted window aligns perfectly

    def test_empty_inputs(self, setup):
        _, source, _, query = setup
        searcher = FrameFineSearcher(source)
        assert searcher.align_frames(query, []) == []
        assert searcher.align_frames(np.empty(0, dtype=np.uint8), []) == []


class TestFrameEngine:
    def test_fine_mode_validation(self, setup):
        _, source, index, _ = setup
        with pytest.raises(SearchError, match="fine_mode"):
            PartitionedSearchEngine(index, source, fine_mode="sideways")

    def test_frames_mode_agrees_with_full_mode_on_planted_match(self, setup):
        _, source, index, query = setup
        full = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        framed = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, fine_mode="frames"
        )
        full_report = full.search(query, top_k=3)
        frame_report = framed.search(query, top_k=3)
        assert frame_report.best().ordinal == full_report.best().ordinal
        assert frame_report.best().score == full_report.best().score

    def test_frames_mode_requires_positions(self, setup):
        records, source, _, _ = setup
        bare = build_index(
            records, IndexParameters(interval_length=8, include_positions=False)
        )
        with pytest.raises(SearchError, match="positions"):
            PartitionedSearchEngine(bare, source, fine_mode="frames")

    def test_frames_mode_is_faster_on_long_sequences(self, setup):
        """The fine phase aligns ~query-sized frames instead of 800-base
        candidates, so measured fine time must drop."""
        import time

        _, source, index, query = setup
        full = PartitionedSearchEngine(index, source, coarse_cutoff=20)
        framed = PartitionedSearchEngine(
            index, source, coarse_cutoff=20, fine_mode="frames"
        )
        full.search(query)  # warm both paths
        framed.search(query)
        started = time.perf_counter()
        for _ in range(3):
            full_report = full.search(query)
        full_seconds = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(3):
            framed.search(query)
        framed_seconds = time.perf_counter() - started
        assert framed_seconds < full_seconds
        assert full_report.best() is not None

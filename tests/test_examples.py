"""Smoke tests: the fast example scripts run and produce their story.

The slower examples (engine comparisons, tuning sweeps) are exercised
manually / by the benchmark harness; these are the ones quick enough
for the test suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "hbb_human" in output
        assert "identity=98.0%" in output

    def test_database_workflow(self):
        output = run_example("database_workflow.py")
        assert "98 sequences" in output
        assert "E=" in output
        assert "identity=100.0%" in output

    @pytest.mark.slow
    def test_external_build(self):
        output = run_example("external_build.py")
        assert "answer-identical" in output

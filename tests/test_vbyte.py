"""Focused tests for the variable-byte codec's fast byte paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.vbyte import VByteCodec
from repro.errors import BitStreamError


@pytest.fixture
def codec():
    return VByteCodec()


class TestLayout:
    def test_single_byte_values(self, codec):
        assert codec.encode_array([0]) == bytes([0x00])
        assert codec.encode_array([127]) == bytes([0x7F])

    def test_two_byte_boundary(self, codec):
        assert codec.encode_array([128]) == bytes([0x80, 0x01])

    def test_code_length_steps_every_seven_bits(self, codec):
        assert codec.code_length(127) == 8
        assert codec.code_length(128) == 16
        assert codec.code_length(2**14 - 1) == 16
        assert codec.code_length(2**14) == 24


class TestFastPaths:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=100))
    def test_byte_path_roundtrip(self, values):
        codec = VByteCodec()
        assert codec.decode_array(codec.encode_array(values), len(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=40))
    def test_byte_path_matches_bit_path(self, values):
        codec = VByteCodec()
        writer = BitWriter()
        for value in values:
            codec.encode_value(writer, value)
        assert writer.getvalue() == codec.encode_array(values)

    @given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=40))
    def test_bit_reader_decodes_byte_encoding(self, values):
        codec = VByteCodec()
        reader = BitReader(codec.encode_array(values))
        assert [codec.decode_value(reader) for _ in values] == values

    def test_short_stream_raises(self, codec):
        with pytest.raises(BitStreamError):
            codec.decode_array(codec.encode_array([1, 2]), 3)

    def test_decode_stops_at_count(self, codec):
        data = codec.encode_array([1, 2, 3])
        assert codec.decode_array(data, 2) == [1, 2]

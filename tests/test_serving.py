"""Serving layer: admission control, the transport-free request core,
the HTTP shell, the load generator, and the fault-injected soak.

The soak is the PR's acceptance criterion in miniature: with one
shard's posting blob zeroed, every request must still complete without
a 5xx and every degraded answer must say so.
"""

import json
import threading
import time
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import faults
from repro.instrumentation.instruments import Instruments
from repro.search.engine import PartitionedSearchEngine
from repro.search.resilience import RetryPolicy, ShardResilience
from repro.sequences.record import Sequence
from repro.serving import (
    AdmissionController,
    LoadgenResult,
    SearchServer,
    ServerConfig,
    run_loadgen,
    run_serving_benchmark,
)
from repro.sharding import ShardedSearchEngine

PARAMS = IndexParameters(interval_length=6)


def _records(count=24, length=200, seed=29):
    rng = np.random.default_rng(seed)
    records = []
    for slot in range(count):
        codes = rng.integers(0, 4, length, dtype=np.uint8)
        if slot and slot % 4 == 0:
            codes[30:90] = records[0].codes[30:90]
        records.append(Sequence(f"srv{slot:03d}", codes))
    return records


def _query_text(records):
    return "".join("ACGT"[c] for c in records[0].codes[20:120])


@pytest.fixture(scope="module")
def records():
    return _records()


@pytest.fixture(scope="module")
def engine(records):
    index = build_index(records, PARAMS)
    return PartitionedSearchEngine(index, MemorySequenceSource(records))


def _body(text, **extra):
    return json.dumps({"query": text, **extra}).encode()


class TestAdmissionController:
    def test_admits_below_limit(self):
        admission = AdmissionController(max_in_flight=2, queue_limit=4)
        assert admission.try_admit()
        assert admission.try_admit()
        assert admission.in_flight == 2

    def test_sheds_at_limit_without_wait(self):
        admission = AdmissionController(max_in_flight=1, queue_limit=4)
        assert admission.try_admit()
        assert not admission.try_admit(wait_seconds=0.0)
        assert admission.shed == 1

    def test_sheds_when_queue_full(self):
        admission = AdmissionController(max_in_flight=1, queue_limit=0)
        assert admission.try_admit()
        assert not admission.try_admit(wait_seconds=5.0)
        assert admission.shed == 1

    def test_release_wakes_a_waiter(self):
        admission = AdmissionController(max_in_flight=1, queue_limit=4)
        assert admission.try_admit()
        outcome = []

        def waiter():
            outcome.append(admission.try_admit(wait_seconds=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        # Let the waiter block, then free the slot.
        time.sleep(0.05)
        admission.release()
        thread.join(timeout=5.0)
        assert outcome == [True]
        assert admission.shed == 0
        admission.release()
        assert admission.in_flight == 0

    def test_bounded_wait_expires(self):
        admission = AdmissionController(max_in_flight=1, queue_limit=4)
        assert admission.try_admit()
        started = time.monotonic()
        assert not admission.try_admit(wait_seconds=0.05)
        assert time.monotonic() - started < 2.0
        assert admission.shed == 1

    def test_unpaired_release_raises(self):
        admission = AdmissionController()
        with pytest.raises(SearchError):
            admission.release()

    def test_validation(self):
        with pytest.raises(SearchError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(SearchError):
            AdmissionController(queue_limit=-1)

    def test_snapshot(self):
        admission = AdmissionController(max_in_flight=2, queue_limit=3)
        admission.try_admit()
        snap = admission.snapshot()
        assert snap["in_flight"] == 1
        assert snap["max_in_flight"] == 2
        assert snap["queue_limit"] == 3
        assert snap["shed"] == 0


class TestHandleRequest:
    """The transport-free core: no sockets involved."""

    @pytest.fixture()
    def server(self, engine):
        return SearchServer(engine, ServerConfig())

    def _json(self, response):
        status, headers, body = response
        return status, headers, json.loads(body)

    def test_search_ok(self, server, records):
        status, headers, payload = self._json(
            server.handle_request(
                "POST", "/search", _body(_query_text(records), top_k=3)
            )
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["hits"], "planted query must hit"
        assert len(payload["hits"]) <= 3
        assert payload["partial"] is False
        assert payload["deadline_expired"] is False
        assert payload["shards_degraded"] == []
        hit = payload["hits"][0]
        assert set(hit) == {
            "ordinal", "identifier", "score", "coarse_score",
            "strand", "evalue",
        }

    def test_bad_json_is_400(self, server):
        status, _, payload = self._json(
            server.handle_request("POST", "/search", b"{nope")
        )
        assert status == 400
        assert "JSON" in payload["error"]

    def test_missing_query_is_400(self, server):
        status, _, payload = self._json(
            server.handle_request("POST", "/search", b"{}")
        )
        assert status == 400

    def test_bad_alphabet_is_400(self, server):
        status, _, payload = self._json(
            server.handle_request(
                "POST", "/search", _body("NOTDNA123")
            )
        )
        assert status == 400
        assert "query" in payload["error"]

    def test_bad_top_k_is_400(self, server, records):
        for top_k in (0, -1, "five", 10_000, True):
            status, _, _ = self._json(
                server.handle_request(
                    "POST", "/search",
                    _body(_query_text(records), top_k=top_k),
                )
            )
            assert status == 400, f"top_k={top_k!r}"

    def test_bad_deadline_is_400(self, server, records):
        for deadline_ms in (0, -5, "fast"):
            status, _, _ = self._json(
                server.handle_request(
                    "POST", "/search",
                    _body(_query_text(records), deadline_ms=deadline_ms),
                )
            )
            assert status == 400, f"deadline_ms={deadline_ms!r}"

    def test_oversized_body_is_400(self, engine):
        server = SearchServer(engine, ServerConfig(max_body_bytes=64))
        status, _, _ = server.handle_request(
            "POST", "/search", b"x" * 65
        )
        assert status == 400

    def test_unknown_endpoint_is_404(self, server):
        status, _, _ = server.handle_request("GET", "/nope", b"")
        assert status == 404

    def test_short_query_is_client_error(self, server):
        # Shorter than the interval length: the engine rejects it, and
        # that rejection must surface as a 400, not a 500.
        status, _, payload = self._json(
            server.handle_request("POST", "/search", _body("ACG"))
        )
        assert status == 400

    def test_health_and_stats(self, server):
        status, _, health = self._json(
            server.handle_request("GET", "/health", b"")
        )
        assert status == 200
        assert health["status"] == "ok"
        status, _, stats = self._json(
            server.handle_request("GET", "/stats", b"")
        )
        assert status == 200
        assert "admission" in stats

    def test_metrics_endpoint_is_prometheus_text(self, engine):
        server = SearchServer(engine, instruments=Instruments())
        status, headers, body = server.handle_request("GET", "/metrics", b"")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_" in body

    def test_saturation_sheds_with_retry_after(self, records):
        class StallingEngine:
            def __init__(self):
                self.release = threading.Event()

            def search(self, query, top_k=10, deadline=None):
                self.release.wait(timeout=10.0)
                raise AssertionError("never reached in this test")

        stalling = StallingEngine()
        server = SearchServer(
            stalling,
            ServerConfig(
                max_in_flight=1, queue_limit=0, admission_wait_seconds=0.0
            ),
        )
        body = _body(_query_text(records))
        blocker = threading.Thread(
            target=server.handle_request, args=("POST", "/search", body)
        )
        blocker.start()
        try:
            # Wait until the blocker actually holds the slot.
            for _ in range(100):
                if server.admission.in_flight:
                    break
                time.sleep(0.01)
            status, headers, payload = server.handle_request(
                "POST", "/search", body
            )
            assert status == 429
            assert "Retry-After" in headers
            assert json.loads(payload)["retry_after_seconds"] > 0
        finally:
            stalling.release.set()
            blocker.join(timeout=5.0)

    def test_engine_crash_is_500_not_raise(self, records):
        class BrokenEngine:
            def search(self, query, top_k=10, deadline=None):
                raise RuntimeError("kaboom")

        instruments = Instruments()
        server = SearchServer(BrokenEngine(), instruments=instruments)
        status, _, payload = server.handle_request(
            "POST", "/search", _body(_query_text(_records()))
        )
        assert status == 500
        counters = instruments.metrics.snapshot()["counters"]
        assert counters["serving.server_errors"] == 1


class TestHTTPShell:
    def test_roundtrip_over_sockets(self, engine, records):
        with SearchServer(engine, ServerConfig(port=0)) as server:
            connection = HTTPConnection(server.host, server.port, timeout=10)
            try:
                body = _body(_query_text(records), top_k=2)
                connection.request(
                    "POST", "/search", body,
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                assert payload["hits"]
                # Keep-alive: a second request on the same connection.
                connection.request("GET", "/health", None, {})
                response = connection.getresponse()
                assert response.status == 200
            finally:
                connection.close()

    def test_double_start_raises(self, engine):
        server = SearchServer(engine, ServerConfig(port=0))
        server.start()
        try:
            with pytest.raises(SearchError):
                server.start()
        finally:
            server.stop()
        server.stop()  # idempotent


class TestLoadgenResult:
    def test_percentiles_and_merge(self):
        a = LoadgenResult(mode="closed", clients=1, duration_seconds=1.0)
        b = LoadgenResult(mode="closed", clients=1, duration_seconds=1.0)
        for latency in (10.0, 20.0, 30.0):
            a.merge_exchange(200, latency, {"partial": False})
        b.merge_exchange(429, 1.0, None)
        b.merge_exchange(
            200, 40.0,
            {"partial": True, "deadline_expired": True,
             "shards_degraded": [1]},
        )
        a.merge(b)
        a.clients = 2
        assert a.requests == 5
        assert a.ok == 4
        assert a.shed == 1
        assert a.partial == 1
        assert a.deadline_expired == 1
        assert a.degraded == 1
        assert a.server_errors == 0
        # Latencies merged: [10, 20, 30, 1, 40].
        assert a.percentile_ms(50) == pytest.approx(20.0)
        assert a.mean_ms() == pytest.approx(20.2)

    def test_document_shape(self):
        result = LoadgenResult(
            mode="closed", clients=2, duration_seconds=1.0
        )
        result.merge_exchange(200, 12.0, {"partial": False})
        document = result.to_document({"note": "unit"})
        metrics = document.metrics
        assert metrics["serving.p99_ms"]["direction"] == "lower"
        assert metrics["serving.throughput_qps"]["direction"] == "higher"
        assert metrics["serving.server_errors"]["direction"] == "lower"
        assert metrics["serving.requests"]["direction"] == "info"
        assert document.meta["note"] == "unit"

    def test_dead_server_document_omits_latency_metrics(self):
        # Zero completed requests: percentile-of-nothing must not be
        # exported as 0.0ms (a gated lower-is-better metric that can
        # only ever "improve"), so the latency metrics are absent and
        # the honest zero lands on throughput instead.
        result = LoadgenResult(
            mode="closed", clients=4, duration_seconds=2.0
        )
        document = result.to_document()
        for name in (
            "serving.p50_ms",
            "serving.p90_ms",
            "serving.p99_ms",
            "serving.mean_ms",
        ):
            assert name not in document.metrics
        assert document.metrics["serving.throughput_qps"]["value"] == 0.0
        assert document.metrics["serving.requests"]["value"] == 0.0


def _sharded_with_fault(records, tmp_path, fault_shard=1):
    """Three disk shards, one with its posting blob zeroed."""
    pairs = []
    indexes = []
    for slot in range(3):
        part = records[slot::3]
        path = tmp_path / f"shard{slot}.rpix"
        write_index(build_index(part, PARAMS), path)
        if slot == fault_shard:
            start, end = faults.index_sections(path)["blob"]
            faults.zero_page(path, start, end - start)
        index = DiskIndex(path)
        indexes.append(index)
        pairs.append((index, MemorySequenceSource(part)))
    engine = ShardedSearchEngine(
        pairs,
        resilience=ShardResilience(
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.001, max_delay=0.002,
                jitter=0.0,
            ),
            breaker_failures=2,
            breaker_reset_seconds=60.0,
            seed=5,
        ),
    )
    return engine, indexes


class TestFaultInjectedSoak:
    def test_soak_zero_5xx_and_annotated_degradation(
        self, records, tmp_path
    ):
        engine, indexes = _sharded_with_fault(records, tmp_path)
        instruments = Instruments()
        server = SearchServer(
            engine,
            ServerConfig(default_deadline_seconds=5.0),
            instruments=instruments,
        )
        query = _query_text(records)
        try:
            statuses = []
            degraded = 0
            for _ in range(25):
                status, _, body = server.handle_request(
                    "POST", "/search", _body(query, top_k=5)
                )
                statuses.append(status)
                payload = json.loads(body)
                if status == 200:
                    # The resilience contract: annotations always present.
                    assert "partial" in payload
                    assert "shards_degraded" in payload
                    if payload["shards_degraded"]:
                        degraded += 1
                        assert payload["partial"] is True
                        assert payload["shards_degraded"] == [1]
            assert all(status < 500 for status in statuses)
            assert degraded == 25, "every query touches the zeroed shard"
            # The fault shard's breaker must have tripped.
            assert engine.breaker_states()[1] == "open"
            status, _, body = server.handle_request("GET", "/health", b"")
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["shards_broken"] == ["1"]
            counters = instruments.metrics.snapshot()["counters"]
            assert counters.get("serving.server_errors", 0) == 0
            assert counters["serving.degraded_responses"] == 25
        finally:
            engine.close()
            for index in indexes:
                index.close()

    def test_run_loadgen_against_faulty_server(self, records, tmp_path):
        engine, indexes = _sharded_with_fault(records, tmp_path)
        server = SearchServer(engine, ServerConfig())
        try:
            with server:
                result = run_loadgen(
                    server.url,
                    [_query_text(records)],
                    clients=3,
                    duration_seconds=0.6,
                    mode="closed",
                    top_k=3,
                )
            assert result.requests > 0
            assert result.server_errors == 0
            assert result.transport_errors == 0
            assert result.degraded == result.ok
            assert result.throughput_qps > 0
        finally:
            engine.close()
            for index in indexes:
                index.close()


def test_run_serving_benchmark_end_to_end(tmp_path):
    result, document = run_serving_benchmark(
        shards=3,
        fault_shard=1,
        clients=2,
        duration_seconds=0.5,
        deadline_ms=400.0,
        num_background=12,
        mean_length=240,
        root=tmp_path,
    )
    assert result.server_errors == 0
    assert result.degraded > 0
    assert document.meta["fault_shard"] == 1
    assert document.meta["breakers"]["1"] == "open"
    assert document.metrics["serving.server_errors"]["value"] == 0


def test_run_loadgen_validates_arguments():
    with pytest.raises(SearchError):
        run_loadgen("http://localhost:1", [], clients=1)
    with pytest.raises(SearchError):
        run_loadgen("http://localhost:1", ["ACGT"], mode="sideways")
    with pytest.raises(SearchError):
        run_loadgen("http://localhost:1", ["ACGT"], mode="open", rate=None)

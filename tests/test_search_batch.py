"""Batch query evaluation: parity with per-query search, parallelism.

``search_batch`` must be a pure convenience: same reports as calling
``search`` per query, in query order, whether it runs sequentially or
on a thread pool.
"""

import numpy as np
import pytest

from repro.database import Database
from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence

PARAMS = IndexParameters(interval_length=6)


def _records(count=24, length=200, seed=41):
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"b{slot:03d}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


def _queries(records, count=8, seed=13):
    rng = np.random.default_rng(seed)
    queries = []
    for number in range(count):
        source = records[int(rng.integers(0, len(records)))]
        start = int(rng.integers(0, len(source) - 90))
        queries.append(
            Sequence(f"q{number}", source.codes[start : start + 90].copy())
        )
    return queries


def _key(report):
    return (
        report.query_identifier,
        [(hit.ordinal, hit.score, hit.coarse_score) for hit in report.hits],
        report.candidates_examined,
    )


@pytest.fixture(scope="module")
def engine_and_queries():
    records = _records()
    engine = PartitionedSearchEngine(
        build_index(records, PARAMS),
        MemorySequenceSource(records),
        coarse_cutoff=10,
    )
    return engine, _queries(records)


class TestSearchBatch:
    def test_matches_per_query_search(self, engine_and_queries):
        engine, queries = engine_and_queries
        batch = engine.search_batch(queries, top_k=5)
        singles = [engine.search(query, top_k=5) for query in queries]
        assert [_key(report) for report in batch] == \
            [_key(report) for report in singles]

    def test_empty_batch(self, engine_and_queries):
        engine, _ = engine_and_queries
        assert engine.search_batch([]) == []
        assert engine.search_batch([], workers=4) == []

    def test_parallel_equals_sequential(self, engine_and_queries):
        engine, queries = engine_and_queries
        sequential = engine.search_batch(queries, top_k=5, workers=1)
        parallel = engine.search_batch(queries, top_k=5, workers=4)
        assert [_key(report) for report in sequential] == \
            [_key(report) for report in parallel]

    def test_reports_come_back_in_query_order(self, engine_and_queries):
        engine, queries = engine_and_queries
        batch = engine.search_batch(queries, top_k=3, workers=3)
        assert [report.query_identifier for report in batch] == \
            [query.identifier for query in queries]

    def test_invalid_workers_rejected(self, engine_and_queries):
        engine, queries = engine_and_queries
        with pytest.raises(SearchError):
            engine.search_batch(queries, workers=0)

    def test_single_query_batch(self, engine_and_queries):
        engine, queries = engine_and_queries
        batch = engine.search_batch(queries[:1], top_k=5, workers=8)
        assert len(batch) == 1
        assert _key(batch[0]) == _key(engine.search(queries[0], top_k=5))


class TestDatabaseSearchBatch:
    def test_sharded_database_batch_parity(self, tmp_path):
        records = _records()
        queries = _queries(records, count=5)
        with Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ) as db:
            batch = db.search_batch(queries, top_k=5, workers=3)
            singles = [db.search(query, top_k=5) for query in queries]
            assert [_key(report) for report in batch] == \
                [_key(report) for report in singles]


class TestBatchMetrics:
    """Threaded batches must account for work exactly like sequential."""

    COUNTERS = (
        "partitioned.queries",
        "partitioned.candidates",
        "store.records_fetched",
        "batch.queries",
    )

    def _run(self, workers):
        from repro.instrumentation import Instruments

        records = _records()
        instruments = Instruments()
        engine = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=10,
            instruments=instruments,
        )
        engine.search_batch(_queries(records), top_k=5, workers=workers)
        return instruments

    def test_parallel_counter_totals_match_sequential(self):
        sequential = self._run(workers=1)
        parallel = self._run(workers=4)
        for name in self.COUNTERS:
            assert parallel.metrics.counter_value(name) == \
                sequential.metrics.counter_value(name), name

    def test_per_worker_counts_sum_to_batch_size(self):
        instruments = self._run(workers=4)
        counters = instruments.metrics.snapshot()["counters"]
        per_worker = [
            value
            for name, value in counters.items()
            if name.startswith("batch.worker.")
        ]
        assert per_worker
        assert sum(per_worker) == counters["batch.queries"]

    def test_batch_wall_seconds_observed_once(self):
        instruments = self._run(workers=4)
        summary = instruments.metrics.snapshot()["histograms"][
            "batch.wall_seconds"
        ]
        assert summary["count"] == 1
        assert summary["total"] > 0

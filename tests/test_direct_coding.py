"""Unit and property tests for direct (cino-style) sequence coding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.direct import (
    decode_sequence,
    encode_sequence,
    measure,
    raw_two_bit_size,
)
from repro.errors import CodecError
from repro.sequences import alphabet

iupac_text = st.text(alphabet=alphabet.IUPAC_ALPHABET, max_size=300)
base_text = st.text(alphabet="ACGT", min_size=1, max_size=300)


class TestRoundTrip:
    @given(iupac_text)
    def test_any_iupac_string(self, text):
        codes = alphabet.encode(text)
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

    def test_empty_sequence(self):
        empty = np.empty(0, dtype=np.uint8)
        assert decode_sequence(encode_sequence(empty)).shape == (0,)

    def test_all_wildcards(self):
        codes = alphabet.encode("NNNNRYKWBD")
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65])
    def test_padding_boundaries(self, length):
        codes = (np.arange(length) % 4).astype(np.uint8)
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

    def test_rejects_out_of_alphabet_codes(self):
        with pytest.raises(CodecError):
            encode_sequence(np.array([50], dtype=np.uint8))


class TestCompression:
    def test_close_to_two_bits_per_base_without_wildcards(self):
        rng = np.random.default_rng(1)
        sequences = [
            rng.integers(0, 4, 4000, dtype=np.uint8) for _ in range(5)
        ]
        stats = measure(sequences)
        assert stats.total_wildcards == 0
        assert 2.0 <= stats.bits_per_base <= 2.05

    def test_wildcards_cost_extra_but_bounded(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 4, 4000, dtype=np.uint8)
        codes[rng.random(4000) < 0.01] = 14  # 1% N
        stats = measure([codes])
        assert 2.0 < stats.bits_per_base < 2.4

    def test_much_smaller_than_ascii(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, 10_000, dtype=np.uint8)
        assert len(encode_sequence(codes)) < 10_000 / 3.5

    def test_raw_two_bit_size(self):
        assert raw_two_bit_size(0) == 0
        assert raw_two_bit_size(4) == 1
        assert raw_two_bit_size(5) == 2
        with pytest.raises(CodecError):
            raw_two_bit_size(-1)

    def test_measure_totals(self):
        stats = measure([alphabet.encode("ACGTN"), alphabet.encode("AA")])
        assert stats.total_bases == 6
        assert stats.total_wildcards == 1
        assert stats.compressed_bytes > 0

    def test_empty_measure(self):
        stats = measure([])
        assert stats.bits_per_base == 0.0


class TestWildcardPlacement:
    @given(
        base_text,
        st.lists(st.integers(min_value=0, max_value=298), max_size=12),
    )
    def test_wildcards_at_arbitrary_positions(self, text, positions):
        codes = alphabet.encode(text)
        for position in positions:
            if position < codes.shape[0]:
                codes[position] = 14  # N
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

    def test_wildcard_at_first_and_last_position(self):
        codes = alphabet.encode("NACGTN")
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

    def test_adjacent_wildcards(self):
        codes = alphabet.encode("ACNNNNGT")
        assert np.array_equal(decode_sequence(encode_sequence(codes)), codes)

"""Shard layer: planner, layout, parallel build, fan-out/merge parity.

The load-bearing invariant is *score identity*: a sharded engine (any
shard count) must return hit-for-hit identical results to one
:class:`PartitionedSearchEngine` over the unsharded collection — same
ordinals, scores, coarse scores, strands, E-values, and candidate
counts — for every fine mode.
"""

import json

import numpy as np
import pytest

from repro.align.scoring import ScoringScheme
from repro.database import Database
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    IndexParameterError,
    SearchError,
)
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import faults
from repro.instrumentation.instruments import Instruments
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence
from repro.sharding import (
    ShardedSearchEngine,
    ShardedSequenceSource,
    ShardSpec,
    layout_from_manifest,
    plan_shards,
    shard_of,
)
from repro.sharding.build import build_sharded_database

PARAMS = IndexParameters(interval_length=6)


def _records(count=36, length=220, seed=17):
    rng = np.random.default_rng(seed)
    records = []
    for slot in range(count):
        codes = rng.integers(0, 4, length, dtype=np.uint8)
        # Plant shared fragments so queries have multi-shard answers.
        if slot % 3 == 0:
            codes[20:80] = rng.integers(0, 4, 60, dtype=np.uint8) if slot == 0 \
                else records[0].codes[20:80]
        records.append(Sequence(f"sh{slot:03d}", codes))
    return records


def _queries(records, seed=5):
    rng = np.random.default_rng(seed)
    queries = []
    for number in range(6):
        source = records[int(rng.integers(0, len(records)))]
        start = int(rng.integers(0, len(source) - 100))
        queries.append(Sequence(f"q{number}", source.codes[start : start + 100].copy()))
    return queries


def _report_key(report):
    return (
        [
            (hit.ordinal, hit.identifier, hit.score, hit.coarse_score,
             hit.strand, hit.evalue)
            for hit in report.hits
        ],
        report.candidates_examined,
    )


def _split_engines(records, shards, **kwargs):
    plan = plan_shards(len(records), shards)
    pairs = []
    for spec in plan:
        chunk = records[spec.base : spec.stop]
        pairs.append(
            (build_index(chunk, PARAMS), MemorySequenceSource(chunk))
        )
    return ShardedSearchEngine(pairs, **kwargs)


class TestPlanner:
    def test_balanced_split(self):
        plan = plan_shards(10, 4)
        assert [(spec.base, spec.count) for spec in plan] == [
            (0, 3), (3, 3), (6, 2), (8, 2),
        ]
        assert plan[-1].stop == 10

    def test_single_shard(self):
        plan = plan_shards(7, 1)
        assert len(plan) == 1
        assert (plan[0].base, plan[0].count) == (0, 7)

    def test_more_shards_than_sequences_clamps(self):
        plan = plan_shards(3, 8)
        assert len(plan) == 3
        assert all(spec.count == 1 for spec in plan)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(IndexParameterError):
            plan_shards(0, 2)
        with pytest.raises(IndexParameterError):
            plan_shards(5, 0)
        with pytest.raises(IndexParameterError):
            ShardSpec(0, 0, 0)

    def test_shard_of_locates_every_ordinal(self):
        plan = plan_shards(11, 3)
        bases = [spec.base for spec in plan]
        for ordinal in range(11):
            slot = shard_of(bases, ordinal)
            assert plan[slot].base <= ordinal < plan[slot].stop

    def test_shard_names_are_stable(self):
        assert plan_shards(4, 2)[1].name == "shard-0001"


class TestLayoutManifest:
    def test_round_trip(self, tmp_path):
        records = _records(12)
        Database.create(records, tmp_path / "db", params=PARAMS, shards=3).close()
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        layout = layout_from_manifest(manifest)
        assert [entry.name for entry in layout] == [
            "shard-0000", "shard-0001", "shard-0002",
        ]
        assert [entry.base for entry in layout] == [0, 4, 8]
        assert sum(entry.sequences for entry in layout) == 12

    def test_single_shard_manifest_has_no_shards_key(self, tmp_path):
        Database.create(_records(6), tmp_path / "db", params=PARAMS).close()
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        assert "shards" not in manifest
        assert layout_from_manifest(manifest) is None

    def test_non_contiguous_layout_rejected(self, tmp_path):
        records = _records(12)
        Database.create(records, tmp_path / "db", params=PARAMS, shards=2).close()
        manifest_path = tmp_path / "db" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"]["layout"][1]["base"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError, match="contiguous"):
            Database.open(tmp_path / "db")

    def test_count_mismatch_rejected(self, tmp_path):
        records = _records(12)
        Database.create(records, tmp_path / "db", params=PARAMS, shards=2).close()
        manifest_path = tmp_path / "db" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"]["count"] = 3
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError):
            Database.open(tmp_path / "db")


class TestSingleShardByteCompatibility:
    def test_layout_is_the_classic_file_set(self, tmp_path):
        Database.create(_records(8), tmp_path / "db", params=PARAMS).close()
        assert sorted(p.name for p in (tmp_path / "db").iterdir()) == [
            "intervals.rpix", "manifest.json", "sequences.rpsq",
        ]

    def test_manifest_matches_pre_shard_schema(self, tmp_path):
        Database.create(_records(8), tmp_path / "db", params=PARAMS).close()
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        assert sorted(manifest) == [
            "bases", "checksums", "coarse", "coding", "index_bytes",
            "params", "sequences", "store_bytes", "version",
        ]
        assert manifest["version"] == 2
        assert manifest["coarse"] == {"backend": "inverted", "params": {}}


class TestScoreIdentity:
    """Sharded answers must equal the single-engine answers exactly."""

    @pytest.fixture(scope="class")
    def workload(self):
        records = _records()
        return records, _queries(records)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("fine_mode", ["full", "frames"])
    def test_parity_across_shard_counts(self, workload, shards, fine_mode):
        records, queries = workload
        single = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=12,
            fine_mode=fine_mode,
        )
        sharded = _split_engines(
            records, shards, coarse_cutoff=12, fine_mode=fine_mode
        )
        for query in queries:
            assert _report_key(sharded.search(query, top_k=10)) == \
                _report_key(single.search(query, top_k=10))

    def test_parity_with_both_strands_and_evalues(self, workload):
        from repro.align.statistics import calibrate_gapped

        records, queries = workload
        significance = calibrate_gapped(ScoringScheme())
        single = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=15,
            both_strands=True,
            significance=significance,
        )
        sharded = _split_engines(
            records, 3, coarse_cutoff=15, both_strands=True,
            significance=significance,
        )
        for query in queries:
            assert _report_key(sharded.search(query, top_k=8)) == \
                _report_key(single.search(query, top_k=8))

    def test_parity_with_diagonal_scorer(self, workload):
        records, queries = workload
        single = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_scorer="diagonal",
            coarse_cutoff=10,
        )
        sharded = _split_engines(
            records, 4, coarse_scorer="diagonal", coarse_cutoff=10
        )
        for query in queries:
            assert _report_key(sharded.search(query, top_k=10)) == \
                _report_key(single.search(query, top_k=10))

    def test_database_facade_parity(self, workload, tmp_path):
        records, queries = workload
        Database.create(records, tmp_path / "one", params=PARAMS).close()
        Database.create(
            records, tmp_path / "four", params=PARAMS, shards=4, workers=2
        ).close()
        with Database.open(tmp_path / "one") as db1, \
                Database.open(tmp_path / "four") as db4:
            assert db1.num_shards == 1
            assert db4.num_shards == 4
            for query in queries:
                assert _report_key(
                    db4.search(query, top_k=10, both_strands=True)
                ) == _report_key(
                    db1.search(query, top_k=10, both_strands=True)
                )

    def test_collection_scorers_rejected(self, workload):
        records, _ = workload
        for scorer in ("idf", "normalised"):
            with pytest.raises(SearchError, match="collection-wide"):
                _split_engines(records, 2, coarse_scorer=scorer)
        # Custom scorer instances cannot be vetted for shard-safety.
        from repro.search.coarse import make_scorer

        with pytest.raises(SearchError, match="name"):
            _split_engines(records, 2, coarse_scorer=make_scorer("count"))


class TestShardedSequenceSource:
    def test_global_ordinal_routing(self):
        records = _records(10)
        plan = plan_shards(10, 3)
        source = ShardedSequenceSource(
            [
                MemorySequenceSource(records[spec.base : spec.stop])
                for spec in plan
            ]
        )
        assert len(source) == 10
        for ordinal, record in enumerate(records):
            assert source.identifier(ordinal) == record.identifier
            np.testing.assert_array_equal(source.codes(ordinal), record.codes)

    def test_out_of_range_rejected(self):
        source = ShardedSequenceSource([MemorySequenceSource(_records(3))])
        with pytest.raises(Exception):
            source.codes(3)


class TestParallelBuild:
    def test_workers_produce_identical_bytes(self, tmp_path):
        records = _records(12)
        plan = plan_shards(12, 3)
        first = build_sharded_database(
            tmp_path / "w1", records, plan, PARAMS, workers=1
        )
        second = build_sharded_database(
            tmp_path / "w3", records, plan, PARAMS, workers=3
        )
        assert first == second  # includes every shard's CRC32 digests
        for spec in plan:
            for name in ("intervals.rpix", "sequences.rpsq"):
                assert (tmp_path / "w1" / spec.name / name).read_bytes() == \
                    (tmp_path / "w3" / spec.name / name).read_bytes()

    def test_each_shard_is_an_openable_database(self, tmp_path):
        records = _records(9)
        Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ).close()
        with Database.open(tmp_path / "db" / "shard-0001") as shard:
            assert len(shard) == 3
            assert shard.record(0).identifier == records[3].identifier

    def test_invalid_arguments(self, tmp_path):
        records = _records(4)
        with pytest.raises(IndexParameterError):
            build_sharded_database(
                tmp_path, records, plan_shards(4, 2), PARAMS, workers=0
            )
        with pytest.raises(IndexParameterError):
            build_sharded_database(tmp_path, records, [], PARAMS)
        with pytest.raises(IndexParameterError):
            Database.create(records, tmp_path / "bad", shards=0)
        with pytest.raises(IndexParameterError):
            Database.create(records, tmp_path / "bad", workers=0)

    def test_shards_clamped_to_collection(self, tmp_path):
        records = _records(3)
        with Database.create(
            records, tmp_path / "tiny", params=PARAMS, shards=8
        ) as db:
            assert db.num_shards == 3
            assert len(db) == 3


class TestDatabaseFacade:
    def test_record_routing_and_shard_of(self, tmp_path):
        records = _records(10)
        with Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ) as db:
            for ordinal, record in enumerate(records):
                assert db.record(ordinal).identifier == record.identifier
            assert [r.identifier for r in db.records()] == \
                [r.identifier for r in records]
            assert db.shard_of(0).name == "shard-0000"
            assert db.shard_of(9).name == "shard-0002"
            with pytest.raises(SearchError):
                db.shard_of(10)

    def test_index_and_store_are_single_shard_conveniences(self, tmp_path):
        records = _records(8)
        with Database.create(records, tmp_path / "one", params=PARAMS) as db:
            assert db.index is not None
            assert db.store is not None
        with Database.create(
            records, tmp_path / "two", params=PARAMS, shards=2
        ) as db:
            assert db.index is None
            assert db.store is None
            assert db.shards[0].index is not None

    def test_alignment_reaches_every_shard(self, tmp_path):
        records = _records(9)
        with Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ) as db:
            query = Sequence("q", records[7].codes[10:110].copy())
            alignment = db.alignment(query, 7)
            assert alignment.score >= 90

    def test_describe_mentions_shards(self, tmp_path):
        with Database.create(
            _records(8), tmp_path / "db", params=PARAMS, shards=2
        ) as db:
            assert "2 shards" in db.describe()

    def test_full_verify_open(self, tmp_path):
        records = _records(8)
        Database.create(
            records, tmp_path / "db", params=PARAMS, shards=2
        ).close()
        with Database.open(tmp_path / "db", verify="full") as db:
            assert len(db) == 8


class TestShardedVerifyRepair:
    def _sharded_db(self, tmp_path, count=9, shards=3):
        records = _records(count)
        path = tmp_path / "db"
        Database.create(records, path, params=PARAMS, shards=shards).close()
        return path, records

    def test_verify_intact(self, tmp_path):
        path, _ = self._sharded_db(tmp_path)
        assert Database.verify(path).ok

    def test_verify_reports_damaged_shard(self, tmp_path):
        path, _ = self._sharded_db(tmp_path)
        target = path / "shard-0001" / "intervals.rpix"
        span = faults.index_sections(target)["table"]
        faults.flip_byte(target, span[0], mask=0x08)
        report = Database.verify(path)
        assert not report.ok
        assert any("shard-0001" in issue for issue in report.issues)

    def test_verify_catches_swapped_shard(self, tmp_path):
        path, records = self._sharded_db(tmp_path)
        # Rebuild shard-0001 with different contents but a fully
        # self-consistent shard directory: only the top-level manifest's
        # recorded digests can catch it.
        import shutil

        from repro.sharding.build import build_shard_directory

        shutil.rmtree(path / "shard-0001")
        build_shard_directory(
            path / "shard-0001", [records[0], records[1], records[2]], PARAMS
        )
        assert Database.verify(path / "shard-0001").ok
        report = Database.verify(path)
        assert not report.ok
        assert any("top-level manifest" in issue for issue in report.issues)

    def test_repair_rebuilds_damaged_shard(self, tmp_path):
        path, records = self._sharded_db(tmp_path)
        query = Sequence("q", records[5].codes[20:120].copy())
        with Database.open(path) as db:
            baseline = _report_key(db.search(query))
        target = path / "shard-0001" / "intervals.rpix"
        span = faults.index_sections(target)["table"]
        faults.zero_page(target, span[0], span[1] - span[0])
        with pytest.raises(CorruptionError):
            Database.open(path)
        with Database.repair(path) as repaired:
            assert repaired.num_shards == 3
            assert _report_key(repaired.search(query)) == baseline
        assert Database.verify(path).ok

    def test_fallback_open_degrades_and_scans(self, tmp_path):
        path, records = self._sharded_db(tmp_path)
        query = Sequence("q", records[5].codes[20:120].copy())
        with Database.open(path) as db:
            expected = db.search(query).best().ordinal
        target = path / "shard-0001" / "intervals.rpix"
        span = faults.index_sections(target)["header_crc"]
        faults.flip_byte(target, span[0], mask=0x80)
        with Database.open(path, on_corruption="fallback") as db:
            assert db.degraded
            report = db.search(query)
            assert report.degraded
            assert report.best().ordinal == expected


class TestShardedInstrumentation:
    def test_per_shard_spans_and_counters(self):
        records = _records(12)
        engine = _split_engines(records, 3, coarse_cutoff=10)
        instruments = Instruments()
        engine.set_instruments(instruments)
        engine.search(Sequence("q", records[4].codes[10:110].copy()))
        counters = instruments.metrics.snapshot()["counters"]
        assert counters["sharded.queries"] == 1
        assert any(
            name.startswith("sharded.shard.") for name in counters
        )
        span_names = {row["name"] for row in instruments.tracer.flat()}
        assert "shard[0].coarse" in span_names
        assert "merge" in span_names


class TestDifferentialParity:
    """Sharded and incrementally-grown layouts vs the single index."""

    @pytest.mark.parametrize("scorer", ["count", "diagonal"])
    def test_shard_safe_scorers_agree_across_layouts(
        self, parity_worlds, scorer
    ):
        parity_worlds.check(coarse_scorer=scorer)

    def test_both_strands_agree_across_layouts(self, parity_worlds):
        parity_worlds.check(both_strands=True)

    def test_tombstones_filter_before_merge(self, parity_worlds):
        from repro.instrumentation.instruments import Instruments

        live = parity_worlds.live
        instruments = Instruments()
        live.set_instruments(instruments)
        try:
            live.search(parity_worlds.queries[-1], top_k=10)
            counters = instruments.metrics.snapshot()["counters"]
            assert counters.get("lsm.tombstones_filtered", 0) >= 0
            gauges = instruments.metrics.snapshot()["gauges"]
            assert gauges["lsm.generation"] == 3
            assert gauges["lsm.delta_shards"] == 2
        finally:
            live.set_instruments(None)

"""The atomic-write helper: all-or-nothing file replacement."""

import os
import zlib

import pytest

from repro.errors import StorageError
from repro.index.atomic import (
    atomic_write,
    file_crc32,
    write_bytes_atomic,
    write_text_atomic,
)
from repro.instrumentation.faults import SimulatedCrash, crash_during_replace


def _no_temp_files(directory):
    return [name for name in os.listdir(directory) if name.endswith(".tmp")] == []


def test_write_creates_file(tmp_path):
    target = tmp_path / "out.bin"
    with atomic_write(target) as handle:
        handle.write(b"payload")
    assert target.read_bytes() == b"payload"
    assert _no_temp_files(tmp_path)


def test_overwrite_replaces_content(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"old")
    write_bytes_atomic(target, b"new content")
    assert target.read_bytes() == b"new content"
    assert _no_temp_files(tmp_path)


def test_exception_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"original")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as handle:
            handle.write(b"partial garbage")
            raise RuntimeError("writer failed midway")
    assert target.read_bytes() == b"original"
    assert _no_temp_files(tmp_path)


def test_crash_at_replace_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"original")
    with pytest.raises(SimulatedCrash):
        with crash_during_replace():
            write_bytes_atomic(target, b"never lands")
    assert target.read_bytes() == b"original"
    assert _no_temp_files(tmp_path)


def test_write_text(tmp_path):
    target = tmp_path / "note.txt"
    write_text_atomic(target, "héllo\n")
    assert target.read_text(encoding="utf-8") == "héllo\n"


def test_missing_parent_raises_storage_error(tmp_path):
    with pytest.raises(StorageError):
        write_bytes_atomic(tmp_path / "nowhere" / "out.bin", b"data")


def test_file_crc32_matches_zlib(tmp_path):
    target = tmp_path / "blob.bin"
    payload = bytes(range(256)) * 1000
    target.write_bytes(payload)
    assert file_crc32(target) == (zlib.crc32(payload) & 0xFFFFFFFF)

"""Unit tests for index stopping."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters, build_index
from repro.index.stopping import stop_above_frequency, stop_most_frequent
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def skewed_index():
    """An index where poly-A intervals dominate (a frequency skew)."""
    rng = np.random.default_rng(13)
    records = []
    for slot in range(15):
        codes = rng.integers(0, 4, 200, dtype=np.uint8)
        codes[:40] = 0  # a poly-A run in every sequence
        records.append(Sequence(f"s{slot}", codes))
    return build_index(records, IndexParameters(interval_length=4))


class TestStopMostFrequent:
    def test_zero_fraction_drops_nothing(self, skewed_index):
        stopped, report = stop_most_frequent(skewed_index, 0.0)
        assert report.dropped_intervals == 0
        assert stopped.vocabulary_size == skewed_index.vocabulary_size

    def test_fraction_bounds(self, skewed_index):
        with pytest.raises(IndexParameterError):
            stop_most_frequent(skewed_index, 1.0)
        with pytest.raises(IndexParameterError):
            stop_most_frequent(skewed_index, -0.1)

    def test_drops_the_most_frequent_first(self, skewed_index):
        stopped, report = stop_most_frequent(skewed_index, 0.01)
        assert report.dropped_intervals >= 1
        # The poly-A interval is by construction the most frequent.
        assert skewed_index.lookup_entry(0) is not None
        assert stopped.lookup_entry(0) is None

    def test_surviving_postings_unchanged(self, skewed_index):
        stopped, _ = stop_most_frequent(skewed_index, 0.05)
        for interval in stopped.interval_ids():
            assert (
                stopped.lookup_entry(interval).data
                == skewed_index.lookup_entry(interval).data
            )

    def test_never_adds_intervals(self, skewed_index):
        stopped, _ = stop_most_frequent(skewed_index, 0.10)
        original = set(skewed_index.interval_ids())
        assert set(stopped.interval_ids()) <= original

    def test_report_accounts_for_all_drops(self, skewed_index):
        stopped, report = stop_most_frequent(skewed_index, 0.20)
        assert (
            stopped.vocabulary_size + report.dropped_intervals
            == skewed_index.vocabulary_size
        )
        assert (
            stopped.pointer_count + report.dropped_pointers
            == skewed_index.pointer_count
        )
        assert (
            stopped.compressed_bytes + report.dropped_bytes
            == skewed_index.compressed_bytes
        )

    def test_threshold_is_boundary_cf(self, skewed_index):
        stopped, report = stop_most_frequent(skewed_index, 0.10)
        kept_max = max(entry.cf for entry in stopped.entries())
        assert report.threshold_cf >= kept_max

    def test_original_untouched(self, skewed_index):
        before = skewed_index.vocabulary_size
        stop_most_frequent(skewed_index, 0.5)
        assert skewed_index.vocabulary_size == before


class TestStopAboveFrequency:
    def test_threshold_semantics(self, skewed_index):
        stopped, report = stop_above_frequency(skewed_index, 20)
        assert all(entry.cf <= 20 for entry in stopped.entries())
        assert report.dropped_intervals == (
            skewed_index.vocabulary_size - stopped.vocabulary_size
        )

    def test_huge_threshold_drops_nothing(self, skewed_index):
        stopped, report = stop_above_frequency(skewed_index, 10**9)
        assert report.dropped_intervals == 0
        assert stopped.vocabulary_size == skewed_index.vocabulary_size

    def test_zero_threshold_drops_everything(self, skewed_index):
        stopped, _ = stop_above_frequency(skewed_index, 0)
        assert stopped.vocabulary_size == 0

    def test_negative_threshold_rejected(self, skewed_index):
        with pytest.raises(IndexParameterError):
            stop_above_frequency(skewed_index, -1)

"""Smoke tests for the benchmark harness's table machinery.

The experiment functions themselves run minutes and are exercised by
``python -m benchmarks.harness``; here we pin the cheap, logic-bearing
parts: rendering, cell formatting, and the experiment registry.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import EXPERIMENTS, Table, _cell, main  # noqa: E402


class TestTableRendering:
    def test_render_aligns_columns(self):
        table = Table(
            "EX",
            "demo",
            ("name", "value"),
            (("alpha", 1.5), ("b", 23456),),
            note="a note",
        )
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== EX: demo =="
        assert lines[-1] == "note: a note"
        # Column positions line up between header and rows.
        header, first_row = lines[1], lines[2]
        assert header.index("value") + len("value") == len(header)
        assert len(first_row) == len(header)

    def test_render_empty_rows(self):
        table = Table("EX", "empty", ("a", "b"), ())
        assert "EX: empty" in table.render()

    def test_render_markdown_shape(self):
        table = Table("EX", "demo", ("a", "b"), ((1, 2.5),), note="hi")
        text = table.render_markdown()
        lines = text.splitlines()
        assert lines[0] == "### EX: demo"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | 2.50 |"
        assert lines[-1] == "*hi*"

    def test_cell_formats_floats_to_two_places(self):
        assert _cell(1.23456) == "1.23"
        assert _cell(7) == "7"
        assert _cell("x") == "x"


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {f"E{n}" for n in range(1, 9)} | {"E7B", "PROFILE"}
        assert set(EXPERIMENTS) == expected

    def test_every_entry_is_callable(self):
        for experiment in EXPERIMENTS.values():
            assert callable(experiment)

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["E99"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

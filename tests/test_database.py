"""Unit tests for the Database facade."""

import numpy as np
import pytest

from repro.align.scoring import ScoringScheme
from repro.database import Database
from repro.errors import IndexFormatError, SearchError
from repro.index.builder import IndexParameters
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(161)
    made = [
        Sequence(f"db{slot}", rng.integers(0, 4, 300, dtype=np.uint8))
        for slot in range(30)
    ]
    relative = made[20].codes.copy()
    relative[50:200] = made[4].codes[50:200]
    made[20] = Sequence("db20", relative)
    return made


@pytest.fixture(scope="module")
def database(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("dbs") / "demo.db"
    db = Database.create(records, path)
    yield db
    db.close()


class TestLifecycle:
    def test_create_writes_manifest_and_files(self, database):
        assert (database.path / "manifest.json").exists()
        assert (database.path / "intervals.rpix").exists()
        assert (database.path / "sequences.rpsq").exists()
        assert database.manifest["sequences"] == 30

    def test_double_create_rejected(self, records, database):
        with pytest.raises(IndexFormatError, match="already holds"):
            Database.create(records, database.path)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(IndexFormatError, match="manifest"):
            Database.open(tmp_path / "nowhere")

    def test_bad_manifest_rejected(self, records, tmp_path):
        path = tmp_path / "broken.db"
        Database.create(records, path).close()
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(IndexFormatError, match="bad manifest"):
            Database.open(path)

    def test_version_check(self, records, tmp_path):
        import json

        path = tmp_path / "old.db"
        Database.create(records, path).close()
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError, match="version"):
            Database.open(path)

    def test_context_manager(self, records, tmp_path):
        path = tmp_path / "cm.db"
        Database.create(records, path).close()
        with Database.open(path) as db:
            assert len(db) == 30

    def test_custom_params_persisted(self, records, tmp_path):
        path = tmp_path / "k6.db"
        db = Database.create(
            records, path, params=IndexParameters(interval_length=6)
        )
        try:
            assert db.index.params.interval_length == 6
        finally:
            db.close()
        with Database.open(path) as reopened:
            assert reopened.index.params.interval_length == 6


class TestAccess:
    def test_len_and_total_bases(self, database, records):
        assert len(database) == len(records)
        assert database.total_bases == sum(len(r) for r in records)

    def test_record_roundtrip(self, database, records):
        assert database.record(7) == records[7]

    def test_records_iterates_in_order(self, database, records):
        assert list(database.records()) == records

    def test_describe_mentions_key_numbers(self, database):
        text = database.describe()
        assert "30 sequences" in text
        assert "direct coding" in text


class TestSearch:
    def test_basic_search(self, database, records):
        query = records[11].slice(50, 220)
        report = database.search(query, top_k=5)
        assert report.best().ordinal == 11

    def test_finds_planted_relative(self, database, records):
        query = records[4].slice(60, 190)
        report = database.search(query, top_k=5)
        assert {hit.ordinal for hit in report.hits[:2]} == {4, 20}

    def test_engine_is_cached_per_configuration(self, database):
        assert database.engine(coarse_cutoff=10) is database.engine(
            coarse_cutoff=10
        )
        assert database.engine(coarse_cutoff=10) is not database.engine(
            coarse_cutoff=20
        )

    def test_evalue_engine(self, database, records):
        report = database.search(
            records[2].slice(0, 200), top_k=3, with_evalues=True
        )
        assert report.best().evalue is not None
        assert report.best().evalue < 1e-10

    def test_both_strands_through_facade(self, database, records):
        query = records[9].slice(40, 200).reverse_complement()
        report = database.search(query, top_k=3, both_strands=True)
        assert report.best().ordinal == 9
        assert report.best().strand == "-"

    def test_frames_mode_through_facade(self, database, records):
        query = records[15].slice(30, 230)
        report = database.search(query, top_k=3, fine_mode="frames")
        assert report.best().ordinal == 15

    def test_alignment_retrieval(self, database, records):
        query = records[5].slice(10, 160)
        alignment = database.alignment(query, 5)
        assert alignment.score == 150
        assert alignment.identity == 1.0

    def test_alignment_ordinal_validation(self, database, records):
        with pytest.raises(SearchError):
            database.alignment(records[0].slice(0, 50), 999)

    def test_custom_scheme_search(self, database, records):
        scheme = ScoringScheme(match=2, mismatch=-2, gap=-5)
        report = database.search(
            records[8].slice(0, 150), top_k=3, scheme=scheme
        )
        assert report.best().ordinal == 8
        assert report.best().score == 300


class TestEngineCacheLRU:
    def test_cache_is_bounded(self, records, tmp_path):
        with Database.create(records, tmp_path / "lru.db") as db:
            limit = Database.ENGINE_CACHE_LIMIT
            for cutoff in range(1, limit + 4):
                db.engine(coarse_cutoff=cutoff)
            assert db.cached_engines == limit

    def test_least_recently_used_is_evicted(self, records, tmp_path):
        with Database.create(records, tmp_path / "lru2.db") as db:
            limit = Database.ENGINE_CACHE_LIMIT
            first = db.engine(coarse_cutoff=1)
            second = db.engine(coarse_cutoff=2)
            for cutoff in range(3, limit + 1):
                db.engine(coarse_cutoff=cutoff)
            # Touch the oldest so the *second* oldest gets evicted.
            assert db.engine(coarse_cutoff=1) is first
            db.engine(coarse_cutoff=limit + 1)
            assert db.engine(coarse_cutoff=1) is first
            assert db.engine(coarse_cutoff=2) is not second

    def test_cache_traffic_is_instrumented(self, records, tmp_path):
        from repro.instrumentation.instruments import Instruments

        with Database.create(records, tmp_path / "lru3.db") as db:
            instruments = Instruments()
            db.set_instruments(instruments)
            db.engine(coarse_cutoff=10)
            db.engine(coarse_cutoff=10)
            db.engine(coarse_cutoff=20)
            snapshot = instruments.metrics.snapshot()
            assert snapshot["counters"]["database.engine_cache.misses"] == 2
            assert snapshot["counters"]["database.engine_cache.hits"] == 1
            assert snapshot["gauges"]["database.engine_cache.size"] == 2


class TestDegradedSearchOptions:
    """The exhaustive fallback must honour or reject engine options,
    never silently drop them."""

    @pytest.fixture()
    def degraded_db(self, records, tmp_path):
        from repro.instrumentation import faults

        path = tmp_path / "deg.db"
        Database.create(records, path).close()
        target = path / "intervals.rpix"
        span = faults.index_sections(target)["header_crc"]
        faults.flip_byte(target, span[0], mask=0x80)
        with Database.open(path, on_corruption="fallback") as db:
            assert db.degraded
            yield db

    def test_scheme_is_honoured(self, degraded_db, records):
        query = records[6].slice(0, 120)
        plain = degraded_db.search(query, top_k=1)
        doubled = degraded_db.search(
            query, top_k=1, scheme=ScoringScheme(match=2, mismatch=-2, gap=-5)
        )
        assert plain.degraded and doubled.degraded
        assert doubled.best().score == 2 * plain.best().score

    def test_exhaustive_searcher_cached_per_scheme(self, degraded_db, records):
        query = records[6].slice(0, 120)
        scheme = ScoringScheme(match=2, mismatch=-2, gap=-5)
        degraded_db.search(query, scheme=scheme)
        degraded_db.search(query, scheme=scheme)
        degraded_db.search(query)
        assert len(degraded_db._exhaustive) == 2

    def test_moot_options_accepted(self, degraded_db, records):
        # A cutoff cannot change what an exhaustive scan examines and
        # the corruption policy already applied at open; both pass.
        report = degraded_db.search(
            records[6].slice(0, 120), coarse_cutoff=50, on_corruption="raise"
        )
        assert report.degraded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"both_strands": True},
            {"with_evalues": True},
            {"fine_mode": "frames"},
            {"no_such_option": 1},
        ],
    )
    def test_unhonourable_options_raise(self, degraded_db, records, kwargs):
        with pytest.raises(SearchError, match="cannot honour"):
            degraded_db.search(records[6].slice(0, 120), **kwargs)

    def test_batch_follows_the_same_rules(self, degraded_db, records):
        queries = [records[6].slice(0, 120), records[7].slice(0, 120)]
        reports = degraded_db.search_batch(queries, top_k=2)
        assert all(report.degraded for report in reports)
        with pytest.raises(SearchError, match="cannot honour"):
            degraded_db.search_batch(queries, both_strands=True)


class TestConcurrentEngineCache:
    def test_concurrent_engine_calls_share_one_cache_entry(self, database):
        """The engine cache must be safe under concurrent access: every
        thread gets the same cached engine and the LRU never corrupts
        (the pre-lock race built duplicate engines and could evict a
        live one mid-build)."""
        import threading

        database._engines.clear()
        engines = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(25):
                engines.append(database.engine(coarse_cutoff=64))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(engines) == 200
        assert len({id(engine) for engine in engines}) == 1
        assert database.cached_engines == 1

    def test_concurrent_distinct_options_respect_lru_bound(self, database):
        import threading

        database._engines.clear()
        errors = []

        def worker(slot):
            try:
                for cutoff in range(16, 16 + 12):
                    database.engine(coarse_cutoff=cutoff + slot)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert database.cached_engines <= database.ENGINE_CACHE_LIMIT


class TestDifferentialParity:
    """The facade serves the same answers from any of the three layouts."""

    def test_layouts_agree_with_evalues(self, parity_worlds):
        parity_worlds.check(with_evalues=True)

    def test_describe_reports_live_state(self, parity_worlds):
        description = parity_worlds.live.describe()
        assert "generation 3" in description
        assert "2 delta shard" in description
        single = parity_worlds.single.describe()
        assert "generation" not in single

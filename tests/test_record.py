"""Unit tests for the Sequence record."""

import numpy as np
import pytest

from repro.errors import AlphabetError
from repro.sequences.record import Sequence


class TestConstruction:
    def test_from_text(self):
        record = Sequence.from_text("s1", "ACGT", "a demo")
        assert record.identifier == "s1"
        assert record.description == "a demo"
        assert record.text == "ACGT"
        assert len(record) == 4

    def test_from_text_rejects_bad_characters(self):
        with pytest.raises(AlphabetError):
            Sequence.from_text("s1", "ACGU")

    def test_codes_are_read_only(self):
        record = Sequence.from_text("s1", "ACGT")
        with pytest.raises(ValueError):
            record.codes[0] = 3

    def test_codes_are_copied_to_uint8(self):
        record = Sequence("s1", np.array([0, 1, 2, 3], dtype=np.int64))
        assert record.codes.dtype == np.uint8


class TestEquality:
    def test_equal_records(self):
        assert Sequence.from_text("a", "ACGT") == Sequence.from_text("a", "ACGT")

    def test_different_sequence_not_equal(self):
        assert Sequence.from_text("a", "ACGT") != Sequence.from_text("a", "ACGA")

    def test_different_identifier_not_equal(self):
        assert Sequence.from_text("a", "ACGT") != Sequence.from_text("b", "ACGT")

    def test_hashable(self):
        records = {Sequence.from_text("a", "ACGT"), Sequence.from_text("a", "ACGT")}
        assert len(records) == 1

    def test_not_equal_to_other_types(self):
        assert Sequence.from_text("a", "ACGT") != "ACGT"


class TestDerivedViews:
    def test_slice_keeps_coordinates_in_identifier(self):
        record = Sequence.from_text("s1", "ACGTACGT")
        part = record.slice(2, 6)
        assert part.text == "GTAC"
        assert part.identifier == "s1[2:6]"

    def test_reverse_complement(self):
        record = Sequence.from_text("s1", "AACG")
        assert record.reverse_complement().text == "CGTT"
        assert record.reverse_complement().identifier == "s1/rc"

    def test_wildcard_count(self):
        assert Sequence.from_text("s1", "ANNGT").wildcard_count() == 2

    def test_base_composition_skips_absent_characters(self):
        composition = Sequence.from_text("s1", "AACGN").base_composition()
        assert composition == {"A": 2, "C": 1, "G": 1, "N": 1}

    def test_gc_fraction_excludes_wildcards(self):
        record = Sequence.from_text("s1", "GCNN")
        assert record.gc_fraction() == 1.0

    def test_gc_fraction_of_empty(self):
        assert Sequence.from_text("s1", "N").gc_fraction() == 0.0

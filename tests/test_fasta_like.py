"""Unit tests for the FASTA-style baseline searcher."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.fasta_like import FastaLikeSearcher
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(61)
    made = [
        Sequence(f"fa{slot}", rng.integers(0, 4, 250, dtype=np.uint8))
        for slot in range(20)
    ]
    # Plant a strong relative of sequence 5 inside sequence 11.
    relative = made[11].codes.copy()
    relative[50:150] = made[5].codes[50:150]
    made[11] = Sequence("fa11", relative)
    return made


@pytest.fixture(scope="module")
def searcher(records):
    return FastaLikeSearcher(records, seed_length=6)


class TestValidation:
    def test_empty_collection(self):
        with pytest.raises(SearchError):
            FastaLikeSearcher([])

    def test_rescore_limit_positive(self, records):
        with pytest.raises(SearchError):
            FastaLikeSearcher(records, rescore_limit=0)

    def test_short_query_rejected(self, searcher):
        with pytest.raises(SearchError, match="seed"):
            searcher.search(Sequence.from_text("q", "ACG"))

    def test_top_k_validation(self, searcher, records):
        with pytest.raises(SearchError):
            searcher.search(records[0].codes[:50], top_k=0)


class TestSearch:
    def test_finds_source_sequence(self, searcher, records):
        query = records[3].codes[40:140]
        report = searcher.search(query, top_k=5)
        assert report.best().ordinal == 3

    def test_finds_planted_relative(self, searcher, records):
        query = records[5].codes[60:140]
        report = searcher.search(query, top_k=5)
        assert {hit.ordinal for hit in report.hits[:2]} == {5, 11}

    def test_visits_whole_collection(self, searcher, records):
        report = searcher.search(records[0].codes[:80])
        assert report.candidates_examined == len(records)

    def test_hits_sorted_and_truncated(self, searcher, records):
        report = searcher.search(records[7].codes[:100], top_k=4)
        assert len(report.hits) <= 4
        scores = [hit.score for hit in report.hits]
        assert scores == sorted(scores, reverse=True)

    def test_init1_recorded_as_coarse_score(self, searcher, records):
        query = records[2].codes[:90]
        report = searcher.search(query, top_k=3)
        best = report.best()
        # A verbatim 90-base window gives 85 collinear 6-mers.
        assert best.coarse_score >= 80

    def test_query_identifier_from_record(self, searcher, records):
        report = searcher.search(records[0].slice(0, 80))
        assert report.query_identifier == "fa0[0:80]"

    def test_batch(self, searcher, records):
        queries = [records[0].slice(0, 60), records[1].slice(0, 60)]
        reports = searcher.search_batch(queries, top_k=2)
        assert len(reports) == 2

    def test_rescore_limit_still_finds_best(self, records):
        tight = FastaLikeSearcher(records, seed_length=6, rescore_limit=2)
        query = records[9].codes[30:130]
        report = tight.search(query, top_k=3)
        assert report.best().ordinal == 9

"""Unit tests for synthetic collection generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sequences.mutate import MutationModel
from repro.workloads.synthetic import WorkloadSpec, generate_collection


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.num_sequences == 500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_families": -1},
            {"num_families": 1, "family_size": 0},
            {"mean_length": 0},
            {"length_spread": 1.0},
            {"gc_content": 0.0},
            {"gc_content": 1.0},
            {"wildcard_rate": 1.0},
            {"num_families": 0, "num_background": 0},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)

    def test_expected_bases(self):
        spec = WorkloadSpec(num_families=2, family_size=3,
                            num_background=4, mean_length=100)
        assert spec.expected_bases == 1000


class TestGeneration:
    @pytest.fixture(scope="class")
    def collection(self):
        return generate_collection(
            WorkloadSpec(
                num_families=5,
                family_size=4,
                num_background=30,
                mean_length=300,
                seed=9,
            )
        )

    def test_counts(self, collection):
        assert len(collection.sequences) == 50
        assert len(collection.families) == 5
        assert all(len(members) == 4 for members in collection.families)

    def test_families_partition_correctly(self, collection):
        family_members = [o for fam in collection.families for o in fam]
        assert len(family_members) == len(set(family_members)) == 20

    def test_family_of(self, collection):
        for family_number, members in enumerate(collection.families):
            for ordinal in members:
                assert collection.family_of(ordinal) == family_number
        background = next(
            o for o in range(50) if collection.family_of(o) is None
        )
        assert collection.sequences[background].identifier.startswith("bg")

    def test_family_members_lookup(self, collection):
        assert collection.family_members(0) == frozenset(collection.families[0])
        with pytest.raises(WorkloadError):
            collection.family_members(99)

    def test_family_identifiers_name_their_family(self, collection):
        for family_number, members in enumerate(collection.families):
            for ordinal in members:
                identifier = collection.sequences[ordinal].identifier
                assert identifier.startswith(f"fam{family_number:03d}")

    def test_family_members_are_similar(self, collection):
        from repro.align.kernel import best_local_score
        from repro.align.scoring import ScoringScheme

        scheme = ScoringScheme()
        members = collection.families[0]
        first = collection.sequences[members[0]].codes
        second = collection.sequences[members[1]].codes
        related = best_local_score(first, second, scheme)
        background = collection.sequences[
            next(o for o in range(50) if collection.family_of(o) is None)
        ].codes
        unrelated = best_local_score(first, background, scheme)
        assert related > 2 * unrelated

    def test_determinism(self):
        spec = WorkloadSpec(num_families=2, family_size=2,
                            num_background=5, mean_length=100, seed=4)
        first = generate_collection(spec)
        second = generate_collection(spec)
        assert first.sequences == second.sequences
        assert first.families == second.families

    def test_different_seeds_differ(self):
        base = dict(num_families=2, family_size=2, num_background=5,
                    mean_length=100)
        first = generate_collection(WorkloadSpec(seed=1, **base))
        second = generate_collection(WorkloadSpec(seed=2, **base))
        assert first.sequences != second.sequences


class TestComposition:
    def test_gc_content_respected(self):
        collection = generate_collection(
            WorkloadSpec(num_families=0, num_background=20,
                         mean_length=2000, gc_content=0.7, seed=2)
        )
        gc = np.mean([record.gc_fraction() for record in collection.sequences])
        assert 0.65 < gc < 0.75

    def test_wildcard_rate_respected(self):
        collection = generate_collection(
            WorkloadSpec(num_families=0, num_background=20,
                         mean_length=2000, wildcard_rate=0.01, seed=2)
        )
        total = sum(len(record) for record in collection.sequences)
        wild = sum(record.wildcard_count() for record in collection.sequences)
        assert 0.005 < wild / total < 0.02

    def test_length_spread(self):
        collection = generate_collection(
            WorkloadSpec(num_families=0, num_background=50,
                         mean_length=1000, length_spread=0.5, seed=2)
        )
        lengths = [len(record) for record in collection.sequences]
        assert min(lengths) < 800
        assert max(lengths) > 1200

    def test_fixed_length(self):
        collection = generate_collection(
            WorkloadSpec(num_families=0, num_background=5,
                         mean_length=500, length_spread=0.0, seed=2)
        )
        assert all(len(record) == 500 for record in collection.sequences)

    def test_no_indel_mutation_keeps_family_lengths(self):
        collection = generate_collection(
            WorkloadSpec(
                num_families=3,
                family_size=3,
                num_background=0,
                mean_length=400,
                mutation=MutationModel(0.1, 0.0, 0.0),
                seed=5,
            )
        )
        for members in collection.families:
            lengths = {len(collection.sequences[o]) for o in members}
            assert len(lengths) == 1

"""Unit tests for the nucleotide alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlphabetError
from repro.sequences import alphabet

iupac_text = st.text(alphabet=alphabet.IUPAC_ALPHABET, max_size=200)


class TestEncodeDecode:
    def test_bases_encode_to_expected_codes(self):
        assert alphabet.encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_lowercase_is_accepted(self):
        assert alphabet.encode("acgt").tolist() == [0, 1, 2, 3]

    def test_wildcards_encode_above_base_range(self):
        codes = alphabet.encode("NRYK")
        assert (codes >= alphabet.WILDCARD_MIN_CODE).all()

    def test_empty_string(self):
        assert alphabet.encode("").shape == (0,)
        assert alphabet.decode(np.empty(0, dtype=np.uint8)) == ""

    def test_invalid_character_raises_with_position(self):
        with pytest.raises(AlphabetError, match="position 2"):
            alphabet.encode("ACXT")

    def test_decode_rejects_out_of_range_code(self):
        with pytest.raises(AlphabetError):
            alphabet.decode(np.array([99], dtype=np.uint8))

    def test_bytes_input(self):
        assert alphabet.encode(b"ACGT").tolist() == [0, 1, 2, 3]

    @given(iupac_text)
    def test_roundtrip(self, text):
        assert alphabet.decode(alphabet.encode(text)) == text.upper()


class TestComplement:
    def test_base_complement(self):
        assert alphabet.decode(alphabet.complement(alphabet.encode("ACGT"))) == "TGCA"

    def test_reverse_complement(self):
        codes = alphabet.encode("AACGT")
        assert alphabet.decode(alphabet.reverse_complement(codes)) == "ACGTT"

    @given(iupac_text)
    def test_complement_is_involution(self, text):
        codes = alphabet.encode(text)
        assert np.array_equal(alphabet.complement(alphabet.complement(codes)), codes)

    @given(iupac_text)
    def test_reverse_complement_is_involution(self, text):
        codes = alphabet.encode(text)
        twice = alphabet.reverse_complement(alphabet.reverse_complement(codes))
        assert np.array_equal(twice, codes)

    def test_wildcard_complements_follow_iupac(self):
        # R (AG) complements to Y (CT).
        assert alphabet.decode(alphabet.complement(alphabet.encode("R"))) == "Y"


class TestPredicates:
    def test_is_wildcard_mask(self):
        mask = alphabet.is_wildcard(alphabet.encode("ANCG"))
        assert mask.tolist() == [False, True, False, False]

    def test_validate_bases_accepts_pure_bases(self):
        alphabet.validate_bases(alphabet.encode("ACGTACGT"))

    def test_validate_bases_rejects_wildcards(self):
        with pytest.raises(AlphabetError, match="position 2"):
            alphabet.validate_bases(alphabet.encode("ACNT"))

    def test_expansions_cover_every_character(self):
        assert set(alphabet.IUPAC_EXPANSIONS) == set(alphabet.IUPAC_ALPHABET)

    def test_expansions_are_consistent_with_complement(self):
        # complement(expansion(x)) == expansion(complement(x))
        base_complement = {"A": "T", "C": "G", "G": "C", "T": "A"}
        for char, expansion in alphabet.IUPAC_EXPANSIONS.items():
            complemented = {base_complement[base] for base in expansion}
            partner = alphabet.IUPAC_COMPLEMENTS[char]
            assert complemented == set(alphabet.IUPAC_EXPANSIONS[partner])

"""Incremental layer: delta shards, tombstones, compaction, crash safety.

Two invariants carry this file:

* **differential parity** — a database grown through ingest/delete must
  return hit-for-hit identical reports to a fresh build of the same
  logical collection (the ``parity_worlds`` fixture, plus a Hypothesis
  interleaving test against an in-memory oracle);
* **crash atomicity** — a mutation or compaction killed at any injected
  fault point is invisible on reopen: the previous generation serves
  identical answers and ``verify`` stays clean (orphan directories are
  notes, never issues).
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import parity_report_key
from repro.database import Database
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    IndexParameterError,
    SearchError,
)
from repro.index.builder import IndexParameters, build_index
from repro.index.store import LiveSequenceView, MemorySequenceSource
from repro.instrumentation import faults
from repro.instrumentation.instruments import Instruments
from repro.lsm import live_state_from_manifest, orphan_directories
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence

PARAMS = IndexParameters(interval_length=6)


def _records(count=24, length=200, seed=29, prefix="rec"):
    rng = np.random.default_rng(seed)
    records = []
    for slot in range(count):
        codes = rng.integers(0, 4, length, dtype=np.uint8)
        if slot % 3 == 0 and slot:
            codes[20:80] = records[0].codes[20:80]
        records.append(Sequence(f"{prefix}{slot:03d}", codes))
    return records


def _query(record, start=30, length=100, name="q"):
    return Sequence(name, record.codes[start : start + length].copy())


def _grown_db(path, records, base=14, splits=(14, 19)):
    """Base + two deltas + tombstones over ``records``; returns doomed."""
    database = Database.create(
        records[:base], path, params=PARAMS, shards=2
    )
    database.add_records(records[splits[0] : splits[1]])
    database.add_records(records[splits[1] :])
    doomed = list(range(2, len(records), 5))
    database.delete(doomed)
    database.close()
    return doomed


def _oracle_engine(records, coarse_cutoff=10):
    return PartitionedSearchEngine(
        build_index(records, PARAMS),
        MemorySequenceSource(records),
        coarse_cutoff=coarse_cutoff,
    )


class TestDifferentialParity:
    """The shared three-layout fixture, across every shard-safe engine."""

    def test_default_engine(self, parity_worlds):
        parity_worlds.check()

    @pytest.mark.parametrize("scorer", ["count", "diagonal"])
    def test_coarse_scorers(self, parity_worlds, scorer):
        parity_worlds.check(coarse_scorer=scorer)

    def test_both_strands_with_evalues(self, parity_worlds):
        reports = parity_worlds.check(both_strands=True, with_evalues=True)
        assert any(
            hit.evalue is not None
            for report in reports
            for hit in report.hits
        )

    def test_live_layout_counts(self, parity_worlds):
        live = parity_worlds.live
        assert live.generation == 3
        assert live.delta_shards == 2
        assert live.tombstone_count == len(parity_worlds.doomed)
        assert len(live) == len(parity_worlds.survivors)
        assert live.stored_sequences == len(parity_worlds.survivors) + len(
            parity_worlds.doomed
        )

    def test_live_record_routing(self, parity_worlds):
        live = parity_worlds.live
        expected = [record.identifier for record in parity_worlds.survivors]
        assert [record.identifier for record in live.records()] == expected
        for ordinal in (0, 11, len(expected) - 1):
            assert live.record(ordinal).identifier == expected[ordinal]


class TestLiveManifest:
    def test_manifest_shape(self, tmp_path):
        records = _records()
        _grown_db(tmp_path / "db", records)
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        assert "shards" not in manifest
        live = manifest["lsm"]
        assert live["generation"] == 3
        assert [entry["name"] for entry in live["base"]["layout"]] == [
            "shard-0000", "shard-0001",
        ]
        assert [entry["name"] for entry in live["deltas"]["layout"]] == [
            "delta-g000001", "delta-g000002",
        ]
        assert live["tombstones"] == sorted(live["tombstones"])

    def test_round_trip(self, tmp_path):
        records = _records()
        doomed = _grown_db(tmp_path / "db", records)
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        state = live_state_from_manifest(manifest)
        assert state.generation == 3
        assert state.stored_sequences == len(records)
        assert state.live_sequences == len(records) - len(doomed)
        assert list(state.tombstones) == doomed

    def test_classic_manifest_has_no_lsm_section(self, tmp_path):
        Database.create(_records(6), tmp_path / "db", params=PARAMS).close()
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        assert "lsm" not in manifest
        assert live_state_from_manifest(manifest) is None
        with Database.open(tmp_path / "db") as database:
            assert database.generation == 0
            assert database.delta_shards == 0
            assert database.tombstone_count == 0

    @pytest.mark.parametrize(
        "tamper, message",
        [
            (lambda m: m["lsm"].__setitem__("generation", -1), "generation"),
            (
                lambda m: m["lsm"]["deltas"]["layout"][0].__setitem__(
                    "base", 99
                ),
                "contiguous",
            ),
            (
                lambda m: m["lsm"].__setitem__(
                    "tombstones", [10_000]
                ),
                "tombstone",
            ),
            (lambda m: m["lsm"].__setitem__("base", {"count": 0, "layout": []}),
             "base"),
        ],
    )
    def test_malformed_lsm_section_rejected(self, tmp_path, tamper, message):
        _grown_db(tmp_path / "db", _records())
        manifest_path = tmp_path / "db" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        tamper(manifest)
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError, match=message):
            Database.open(tmp_path / "db")


class TestIngestDelete:
    def test_ingest_builds_complete_delta(self, tmp_path):
        records = _records(16)
        database = Database.create(
            records[:12], tmp_path / "db", params=PARAMS, shards=2
        )
        generation = database.add_records(records[12:])
        assert generation == 1
        assert len(database) == 16
        assert database.record(14).identifier == records[14].identifier
        database.close()
        # The delta is an openable database of its own.
        with Database.open(tmp_path / "db" / "delta-g000001") as delta:
            assert len(delta) == 4
        assert Database.verify(tmp_path / "db").ok

    def test_empty_ingest_rejected(self, tmp_path):
        database = Database.create(
            _records(4), tmp_path / "db", params=PARAMS
        )
        with pytest.raises(IndexParameterError):
            database.add_records([])
        database.close()

    def test_delete_shifts_logical_ordinals(self, tmp_path):
        records = _records(10)
        database = Database.create(
            records, tmp_path / "db", params=PARAMS, shards=2
        )
        database.delete([records[3].identifier, 7])
        expected = [
            record.identifier
            for index, record in enumerate(records)
            if index not in (3, 7)
        ]
        assert [r.identifier for r in database.records()] == expected
        assert len(database) == 8
        # total_bases excludes the dead records' bases.
        assert database.total_bases == sum(
            len(record)
            for index, record in enumerate(records)
            if index not in (3, 7)
        )
        database.close()

    def test_delete_bad_targets_rejected(self, tmp_path):
        records = _records(6)
        database = Database.create(records, tmp_path / "db", params=PARAMS)
        with pytest.raises(SearchError, match="no live record"):
            database.delete(["nonexistent"])
        with pytest.raises(SearchError):
            database.delete([99])
        database.delete([records[2].identifier])
        # The identifier no longer matches any *live* record.
        with pytest.raises(SearchError, match="no live record"):
            database.delete([records[2].identifier])
        database.close()

    def test_instruments_cover_mutations(self, tmp_path):
        records = _records(12)
        database = Database.create(
            records[:8], tmp_path / "db", params=PARAMS, shards=2
        )
        instruments = Instruments()
        database.set_instruments(instruments)
        database.add_records(records[8:])
        database.delete([1])
        database.compact()
        snapshot = instruments.metrics.snapshot()
        assert snapshot["counters"]["lsm.records_added"] == 4
        assert snapshot["counters"]["lsm.records_deleted"] == 1
        assert snapshot["counters"]["lsm.compactions"] == 1
        assert snapshot["gauges"]["lsm.generation"] == 3
        assert snapshot["gauges"]["lsm.delta_shards"] == 0
        assert snapshot["gauges"]["lsm.tombstones"] == 0
        span_names = {row["name"] for row in instruments.tracer.flat()}
        assert {"lsm.append", "lsm.delete", "lsm.compact"} <= span_names
        database.close()


class TestCompaction:
    def test_merge_fast_path_single_shard(self, tmp_path):
        records = _records(15)
        database = Database.create(
            records[:10], tmp_path / "db", params=PARAMS
        )
        database.add_records(records[10:])
        generation = database.compact()
        assert generation == 2
        assert database.num_shards == 1
        assert database.delta_shards == 0
        # Fresh shard directory; the superseded top-level pair is gone.
        assert (tmp_path / "db" / "shard-g000002-0000").is_dir()
        assert not (tmp_path / "db" / "intervals.rpix").exists()
        assert not (tmp_path / "db" / "delta-g000001").exists()
        oracle = _oracle_engine(records)
        query = _query(records[12])
        assert parity_report_key(
            database.search(query, coarse_cutoff=10)
        ) == parity_report_key(oracle.search(query))
        database.close()
        assert Database.verify(tmp_path / "db").ok

    def test_general_path_with_tombstones(self, tmp_path):
        records = _records(24)
        doomed = _grown_db(tmp_path / "db", records)
        with Database.open(tmp_path / "db") as database:
            generation = database.compact(shards=3, workers=2)
            assert generation == 4
            assert database.num_shards == 3
            assert database.tombstone_count == 0
            survivors = [
                record
                for index, record in enumerate(records)
                if index not in set(doomed)
            ]
            assert len(database) == len(survivors)
            oracle = _oracle_engine(survivors)
            query = _query(records[13])
            assert parity_report_key(
                database.search(query, coarse_cutoff=10)
            ) == parity_report_key(oracle.search(query))
        report = Database.verify(tmp_path / "db")
        assert report.ok
        assert not report.issues

    def test_compact_is_noop_when_nothing_pending(self, tmp_path):
        records = _records(8)
        database = Database.create(
            records, tmp_path / "db", params=PARAMS, shards=2
        )
        assert database.compact() == 0
        assert database.generation == 0
        database.close()

    def test_compact_to_empty_collection_rejected(self, tmp_path):
        records = _records(4)
        database = Database.create(records, tmp_path / "db", params=PARAMS)
        database.delete(list(range(4)))
        assert len(database) == 0
        with pytest.raises(IndexParameterError, match="empty"):
            database.compact()
        database.close()


class _Mutations:
    """The crash-matrix operations: run one, and predict its outcome.

    ``apply`` performs the mutation against the on-disk database;
    ``predict`` returns the logical collection the mutation produces
    from the current ``survivors`` list, so the test can check that an
    interrupted run left *exactly* the pre-state or *exactly* the
    post-state — never anything in between.
    """

    @staticmethod
    def ingest(path, survivors, fresh, apply):
        if apply:
            with Database.open(path) as database:
                database.add_records(fresh)
        return survivors + fresh

    @staticmethod
    def delete(path, survivors, fresh, apply):
        if apply:
            with Database.open(path) as database:
                database.delete([1])
        return survivors[:1] + survivors[2:]

    @staticmethod
    def compact(path, survivors, fresh, apply):
        if apply:
            with Database.open(path) as database:
                database.compact(shards=1)
        return list(survivors)


_FAULTS = [
    pytest.param(lambda: faults.crash_on_fsync(after=0), id="fsync0"),
    pytest.param(lambda: faults.crash_on_fsync(after=1), id="fsync1"),
    pytest.param(lambda: faults.crash_on_fsync(after=2), id="fsync2"),
    pytest.param(faults.crash_during_replace, id="torn-rename"),
]


class TestCrashMatrix:
    """Any mutation killed at any fault point is invisible on reopen."""

    def _baseline(self, tmp_path):
        records = _records(18)
        path = tmp_path / "db"
        database = Database.create(
            records[:12], path, params=PARAMS, shards=2
        )
        database.add_records(records[12:15])
        database.delete([5])
        survivors = [record.identifier for record in database.records()]
        generation = database.generation
        query = _query(records[8])
        baseline = parity_report_key(database.search(query, coarse_cutoff=10))
        database.close()
        return path, records, survivors, generation, query, baseline

    @pytest.mark.parametrize("fault", _FAULTS)
    @pytest.mark.parametrize("operation", ["ingest", "delete", "compact"])
    def test_interrupted_mutation_is_atomic(self, tmp_path, operation, fault):
        path, records, survivors, generation, query, baseline = \
            self._baseline(tmp_path)
        fresh = _records(3, seed=91, prefix="new")
        mutation = getattr(_Mutations, operation)
        post = mutation(path, survivors, [r.identifier for r in fresh], False)
        crashed = False
        try:
            with fault():
                mutation(path, survivors, fresh, True)
        except faults.SimulatedCrash:
            crashed = True
        report = Database.verify(path)
        assert report.ok, report.issues
        with Database.open(path) as database:
            identifiers = [r.identifier for r in database.records()]
            if database.generation == generation:
                # Crashed before the commit point: old state, untouched.
                assert crashed
                assert identifiers == survivors
                assert parity_report_key(
                    database.search(query, coarse_cutoff=10)
                ) == baseline
            else:
                # Committed (the crash, if any, hit after the manifest
                # replace): new state, complete.
                assert database.generation == generation + 1
                assert identifiers == post

    def test_first_fsync_always_crashes(self, tmp_path):
        path, _, survivors, *_ = self._baseline(tmp_path)
        with pytest.raises(faults.SimulatedCrash):
            with faults.crash_on_fsync(after=0):
                _Mutations.compact(path, survivors, [], True)

    def test_torn_compaction_then_truncation(self, tmp_path):
        """A torn compaction plus a torn orphan file: still only notes."""
        path, records, survivors, generation, query, baseline = \
            self._baseline(tmp_path)
        with pytest.raises(faults.SimulatedCrash):
            with faults.crash_during_replace():
                _Mutations.compact(path, survivors, [], True)
        manifest = json.loads((path / "manifest.json").read_text())
        state = live_state_from_manifest(manifest)
        orphans = orphan_directories(path, state)
        assert orphans, "torn compaction should leave an orphan directory"
        for artefact in sorted(orphans[0].glob("*")):
            if artefact.is_file():
                faults.truncate_at(artefact, artefact.stat().st_size // 2)
                break
        report = Database.verify(path)
        assert report.ok, report.issues
        assert any(orphans[0].name in note for note in report.notes)
        with Database.open(path) as database:
            assert database.generation == generation
            assert parity_report_key(
                database.search(query, coarse_cutoff=10)
            ) == baseline
            # Recovery converges: the orphan name is reused or removed.
            database.compact(shards=1)
            assert database.generation == generation + 1
        report = Database.verify(path)
        assert report.ok
        assert not any("orphan" in note for note in report.notes)


class TestVerifyRepair:
    def test_verify_recurses_into_delta_shards(self, tmp_path):
        records = _records(16)
        _grown_db(tmp_path / "db", records, base=10, splits=(10, 13))
        target = tmp_path / "db" / "delta-g000001" / "intervals.rpix"
        span = faults.index_sections(target)["table"]
        faults.flip_byte(target, span[0], mask=0x08)
        report = Database.verify(tmp_path / "db")
        assert not report.ok
        assert any("delta-g000001" in issue for issue in report.issues)

    def test_verify_notes_unreferenced_directories(self, tmp_path):
        records = _records(12)
        _grown_db(tmp_path / "db", records, base=8, splits=(8, 10))
        stray = tmp_path / "db" / "delta-g000099"
        stray.mkdir()
        (stray / "junk").write_bytes(b"half-written")
        report = Database.verify(tmp_path / "db")
        assert report.ok
        assert any("delta-g000099" in note for note in report.notes)

    def test_repair_rebuilds_delta_and_keeps_tombstones(self, tmp_path):
        records = _records(16)
        doomed = _grown_db(tmp_path / "db", records, base=10, splits=(10, 13))
        query = _query(records[11])
        with Database.open(tmp_path / "db") as database:
            baseline = parity_report_key(
                database.search(query, coarse_cutoff=10)
            )
            tombstones = database.tombstone_count
        target = tmp_path / "db" / "delta-g000001" / "intervals.rpix"
        span = faults.index_sections(target)["table"]
        faults.zero_page(target, span[0], span[1] - span[0])
        with pytest.raises(CorruptionError):
            Database.open(tmp_path / "db")
        with Database.repair(tmp_path / "db") as repaired:
            assert repaired.tombstone_count == tombstones == len(doomed)
            assert parity_report_key(
                repaired.search(query, coarse_cutoff=10)
            ) == baseline
        assert Database.verify(tmp_path / "db").ok


class TestLiveSequenceView:
    def test_elides_tombstoned_ordinals(self):
        records = _records(8)
        view = LiveSequenceView(MemorySequenceSource(records), [1, 2, 6])
        assert len(view) == 5
        assert [view.stored_ordinal(i) for i in range(5)] == [0, 3, 4, 5, 7]
        assert view.identifier(1) == records[3].identifier
        assert view.logical_ordinal(5) == 3
        with pytest.raises(Exception):
            view.logical_ordinal(2)

    def test_rejects_bad_tombstones(self):
        records = _records(4)
        source = MemorySequenceSource(records)
        for bad in ([2, 1], [1, 1], [9]):
            with pytest.raises(Exception):
                LiveSequenceView(source, bad)


def _make_record(counter, rng):
    codes = rng.integers(0, 4, 120, dtype=np.uint8)
    return Sequence(f"gen{counter:04d}", codes)


class TestInterleavedProperty:
    """Random add/delete/compact interleavings against a list oracle."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_matches_oracle_after_every_step(self, data):
        rng = np.random.default_rng(7)
        base = [_make_record(number, rng) for number in range(8)]
        counter = len(base)
        oracle = list(base)
        with tempfile.TemporaryDirectory() as scratch:
            database = Database.create(
                base, Path(scratch) / "db", params=PARAMS, shards=2
            )
            try:
                steps = data.draw(st.integers(2, 5), label="steps")
                for _ in range(steps):
                    operation = data.draw(
                        st.sampled_from(["add", "delete", "compact"]),
                        label="op",
                    )
                    if operation == "add":
                        count = data.draw(st.integers(1, 3), label="count")
                        fresh = [
                            _make_record(counter + offset, rng)
                            for offset in range(count)
                        ]
                        counter += count
                        database.add_records(fresh)
                        oracle.extend(fresh)
                    elif operation == "delete":
                        if len(oracle) <= 1:
                            continue
                        victim = data.draw(
                            st.integers(0, len(oracle) - 1), label="victim"
                        )
                        database.delete([victim])
                        oracle.pop(victim)
                    else:
                        target = data.draw(
                            st.integers(1, 3), label="shards"
                        )
                        database.compact(shards=target)
                    assert [r.identifier for r in database.records()] == [
                        r.identifier for r in oracle
                    ]
                    probe_from = data.draw(
                        st.integers(0, len(oracle) - 1), label="probe"
                    )
                    probe = Sequence(
                        "probe", oracle[probe_from].codes[10:90].copy()
                    )
                    engine = _oracle_engine(oracle)
                    assert parity_report_key(
                        database.search(probe, top_k=5, coarse_cutoff=10)
                    ) == parity_report_key(engine.search(probe, top_k=5))
            finally:
                database.close()


class TestServingStats:
    def test_stats_report_live_generation(self, tmp_path):
        from repro.serving.server import SearchServer

        records = _records(14)
        _grown_db(tmp_path / "db", records, base=10, splits=(10, 12))
        with Database.open(tmp_path / "db") as database:
            server = SearchServer(database.engine(coarse_cutoff=10))
            status, _, payload = server.handle_request("GET", "/stats", b"")
            assert status == 200
            stats = json.loads(payload)
            assert stats["lsm"]["generation"] == 3
            assert stats["lsm"]["delta_shards"] == 2
            assert stats["lsm"]["tombstones"] > 0

    def test_stats_lsm_null_for_plain_engines(self, small_index, small_source):
        from repro.serving.server import SearchServer

        engine = PartitionedSearchEngine(
            small_index, small_source, coarse_cutoff=10
        )
        server = SearchServer(engine)
        status, _, payload = server.handle_request("GET", "/stats", b"")
        assert status == 200
        assert json.loads(payload)["lsm"] is None


class TestCliLifecycle:
    def test_ingest_delete_compact_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sequences.fasta import write_fasta

        records = _records(18)
        write_fasta(records[:12], tmp_path / "base.fa")
        write_fasta(records[12:], tmp_path / "delta.fa")
        db = tmp_path / "db"
        assert main(
            ["build", str(tmp_path / "base.fa"), "-o", str(db), "--shards", "2"]
        ) == 0
        assert main(["ingest", str(db), str(tmp_path / "delta.fa")]) == 0
        assert "generation 1" in capsys.readouterr().out
        assert main(["delete", str(db), records[4].identifier]) == 0
        assert "1 tombstone(s)" in capsys.readouterr().out
        assert main(["verify", str(db)]) == 0
        assert main(["compact", str(db), "--shards", "2"]) == 0
        assert "generation 3" in capsys.readouterr().out
        assert main(["compact", str(db)]) == 0
        assert "nothing to compact" in capsys.readouterr().out
        assert main(["verify", str(db)]) == 0
        with Database.open(db) as database:
            assert len(database) == 17
            assert database.generation == 3


class TestBenchSuite:
    def test_lsm_suite_shape_and_parity(self):
        from repro.bench import run_lsm_bench

        document = run_lsm_bench(num_sequences=48, num_queries=2)
        data = document.to_dict()
        assert data["suite"] == "lsm"
        metrics = data["metrics"]
        for name in (
            "lsm.ingest_ms",
            "lsm.delta_search_ms",
            "lsm.compact_ms",
            "lsm.compacted_search_ms",
            "lsm.parity",
        ):
            assert name in metrics
        assert metrics["lsm.parity"]["value"] == 1.0
        assert metrics["lsm.parity"]["direction"] == "higher"

"""Unit and integration tests for the observability layer."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import (
    NULL_INSTRUMENTS,
    Instruments,
    MetricsRegistry,
    NullInstruments,
    ProfileSnapshot,
    Tracer,
    coalesce,
    profile_search,
)
from repro.instrumentation.metrics import NULL_METRICS, Histogram
from repro.instrumentation.tracing import _NULL_SPAN_CONTEXT
from repro.search.coarse import CoarseRanker
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(613)
    records = [
        Sequence(f"in{slot}", rng.integers(0, 4, 400, dtype=np.uint8))
        for slot in range(30)
    ]
    source = MemorySequenceSource(records)
    return records, source


def fresh_engine(records, source, **kwargs):
    index = build_index(records, IndexParameters(interval_length=8))
    return index, PartitionedSearchEngine(index, source, **kwargs)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.count("b")
        assert registry.counter_value("a") == 5
        assert registry.counter_value("b") == 1
        assert registry.counter_value("missing") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.5)
        registry.set_gauge("g", 2.5)
        assert registry.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (0.001, 0.002, 0.004, 0.008, 1.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["min"] == 0.001
        assert summary["max"] == 1.0
        assert summary["total"] == pytest.approx(1.015)
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert 0.001 <= summary["p50"] <= 1.0

    def test_histogram_percentile_within_bucket_accuracy(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(0.010)
        # All mass in one bucket: every percentile lands inside it
        # (bucket width is ~78%, interpolation clamps to observed range).
        assert histogram.percentile(50) == pytest.approx(0.010, rel=0.8)
        assert histogram.percentile(99) == pytest.approx(0.010, rel=0.8)

    def test_empty_histogram_is_safe(self):
        histogram = Histogram("h")
        assert histogram.percentile(50) == 0.0
        assert histogram.summary()["min"] == 0.0

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.observe("t_seconds", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["histograms"]["t_seconds"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("search"):
            with tracer.span("coarse"):
                pass
            with tracer.span("fine"):
                pass
        (root,) = tracer.span_tree()
        assert root["name"] == "search"
        assert [child["name"] for child in root["children"]] == [
            "coarse",
            "fine",
        ]
        assert root["seconds"] >= sum(
            child["seconds"] for child in root["children"]
        )

    def test_flat_reports_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        depths = {row["name"]: row["depth"] for row in tracer.flat()}
        assert depths == {"outer": 0, "inner": 1}

    def test_durations_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        assert len(tracer.durations("op")) == 3
        assert all(seconds >= 0.0 for seconds in tracer.durations("op"))

    def test_root_bound(self):
        tracer = Tracer(max_roots=2)
        for slot in range(5):
            with tracer.span(f"r{slot}"):
                pass
        assert [root.name for root in tracer.roots] == ["r3", "r4"]

    def test_annotations_exported(self):
        tracer = Tracer()
        with tracer.span("search") as span:
            span.annotate("candidates", 7)
        assert tracer.span_tree()[0]["annotations"] == {"candidates": 7.0}


class TestNullInstruments:
    def test_disabled_flags(self):
        assert NULL_INSTRUMENTS.enabled is False
        assert NULL_INSTRUMENTS.metrics.enabled is False
        assert NULL_INSTRUMENTS.tracer.enabled is False
        assert Instruments().enabled is True

    def test_span_is_one_shared_object(self):
        """The disabled span path must not allocate per query."""
        first = NULL_INSTRUMENTS.span("a")
        second = NULL_INSTRUMENTS.span("b")
        assert first is second is _NULL_SPAN_CONTEXT

    def test_updates_allocate_no_registry_state(self):
        NULL_INSTRUMENTS.count("x", 3)
        NULL_INSTRUMENTS.set_gauge("y", 1.0)
        NULL_INSTRUMENTS.observe("z", 0.5)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert NULL_INSTRUMENTS.tracer.span_tree() == []

    def test_coalesce(self):
        assert coalesce(None) is NULL_INSTRUMENTS
        real = Instruments()
        assert coalesce(real) is real

    def test_null_is_default_everywhere(self, workload):
        records, source = workload
        index, engine = fresh_engine(records, source)
        assert engine.instruments is NULL_INSTRUMENTS
        assert index.instruments is NULL_INSTRUMENTS
        assert source.instruments is NULL_INSTRUMENTS
        assert CoarseRanker(index).instruments is NULL_INSTRUMENTS

    def test_uninstrumented_search_stays_silent(self, workload):
        records, source = workload
        _, engine = fresh_engine(records, source)
        engine.search(records[3].slice(0, 160))
        assert NULL_METRICS.snapshot()["counters"] == {}


class TestEngineInstrumentation:
    def test_search_produces_nested_spans(self, workload):
        records, source = workload
        instruments = Instruments()
        _, engine = fresh_engine(records, source, instruments=instruments)
        engine.search(records[3].slice(0, 160))
        (root,) = instruments.tracer.span_tree()
        assert root["name"] == "search"
        assert [child["name"] for child in root["children"]] == [
            "coarse",
            "fine",
        ]

    def test_both_strands_produce_two_phase_pairs(self, workload):
        records, source = workload
        instruments = Instruments()
        _, engine = fresh_engine(
            records, source, instruments=instruments, both_strands=True
        )
        engine.search(records[3].slice(0, 160))
        (root,) = instruments.tracer.span_tree()
        assert [child["name"] for child in root["children"]] == [
            "coarse",
            "fine",
            "coarse",
            "fine",
        ]

    def test_query_counters_match_reports(self, workload):
        records, source = workload
        instruments = Instruments()
        _, engine = fresh_engine(records, source, instruments=instruments)
        reports = [
            engine.search(records[slot].slice(0, 160)) for slot in (1, 5, 9)
        ]
        counters = instruments.metrics.snapshot()["counters"]
        assert counters["partitioned.queries"] == 3
        assert counters["partitioned.candidates"] == sum(
            report.candidates_examined for report in reports
        )
        histograms = instruments.metrics.snapshot()["histograms"]
        assert histograms["partitioned.total_seconds"]["count"] == 3

    def test_decode_cache_counters_match_ground_truth(self, workload):
        """Cache hits on a repeated query = that query's indexed
        intervals: every distinct interval present in the vocabulary is
        decoded (a miss) on the first run and served from cache on the
        second."""
        records, source = workload
        index = build_index(records, IndexParameters(interval_length=8))
        index.enable_decode_cache(8192)
        instruments = Instruments()
        engine = PartitionedSearchEngine(
            index, source, instruments=instruments
        )
        codes = records[3].codes[:160]
        unique_ids, _, _ = CoarseRanker(index).query_intervals(codes)
        indexed = sum(
            1 for interval in unique_ids if int(interval) in index
        )
        assert indexed > 0

        engine.search(codes)
        counters = instruments.metrics.snapshot()["counters"]
        assert counters["index.decode_cache.misses"] == indexed
        assert counters.get("index.decode_cache.hits", 0) == 0

        engine.search(codes)
        counters = instruments.metrics.snapshot()["counters"]
        assert counters["index.decode_cache.misses"] == indexed
        assert counters["index.decode_cache.hits"] == indexed

    def test_store_counters_report_fetches(self, tmp_path, workload):
        from repro.index.store import read_store, write_store

        records, _ = workload
        path = tmp_path / "col.rpsq"
        write_store(records, path)
        instruments = Instruments()
        with read_store(path) as store:
            index = build_index(
                records, IndexParameters(interval_length=8)
            )
            engine = PartitionedSearchEngine(
                index, store, instruments=instruments
            )
            report = engine.search(records[3].slice(0, 160))
            counters = instruments.metrics.snapshot()["counters"]
            assert (
                counters["store.records_fetched"]
                == report.candidates_examined
            )
            assert counters["store.bytes_read"] > 0
            assert (
                counters["store.checksums_verified"]
                == report.candidates_examined
            )

    def test_set_instruments_detaches(self, workload):
        records, source = workload
        instruments = Instruments()
        index, engine = fresh_engine(
            records, source, instruments=instruments
        )
        engine.set_instruments(None)
        assert engine.instruments is NULL_INSTRUMENTS
        assert index.instruments is NULL_INSTRUMENTS
        engine.search(records[3].slice(0, 160))
        assert instruments.metrics.snapshot()["counters"] == {}


class TestProfiling:
    def test_profile_search_snapshot(self, workload):
        records, source = workload
        index = build_index(records, IndexParameters(interval_length=8))
        index.enable_decode_cache(8192)
        engine = PartitionedSearchEngine(index, source)
        queries = [records[slot].slice(0, 160) for slot in (1, 5)]
        snapshot = profile_search(engine, queries, top_k=5, repeat=2)
        assert snapshot.queries == 4
        assert snapshot.throughput_qps > 0
        assert snapshot.meta["engine"] == "PartitionedSearchEngine"
        assert "partitioned.total_seconds" in snapshot.phases
        phase = snapshot.phases["partitioned.total_seconds"]
        assert phase["count"] == 4
        assert phase["p50_ms"] <= phase["p99_ms"]
        # The second repetition hits the decode cache for every indexed
        # interval (shared intervals across queries can push it higher).
        assert snapshot.decode_cache["hit_rate"] >= 0.5

    def test_snapshot_json_round_trip(self, tmp_path, workload):
        records, source = workload
        _, engine = fresh_engine(records, source)
        snapshot = profile_search(
            engine, [records[1].slice(0, 160)], meta={"workload": "t"}
        )
        assert ProfileSnapshot.from_json(snapshot.to_json()) == snapshot
        path = snapshot.write(tmp_path / "BENCH_profile.json")
        assert ProfileSnapshot.load(path) == snapshot
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.profile/v1"
        assert data["meta"]["workload"] == "t"

    def test_describe_is_printable(self, workload):
        records, source = workload
        _, engine = fresh_engine(records, source)
        snapshot = profile_search(engine, [records[1].slice(0, 160)])
        text = snapshot.describe()
        assert "throughput" in text
        assert "decode cache" in text


class TestCliProfile:
    def test_synthetic_profile_writes_snapshot(self, tmp_path, capsys):
        target = tmp_path / "BENCH_profile.json"
        status = main(
            [
                "profile",
                "--families", "2",
                "--family-size", "2",
                "--background", "10",
                "--mean-length", "200",
                "--num-queries", "2",
                "--query-length", "80",
                "--cache", "1024",
                "--repeat", "2",
                "-o", str(target),
            ]
        )
        assert status == 0
        snapshot = ProfileSnapshot.load(target)
        assert snapshot.queries == 4
        assert snapshot.meta["workload"] == "synthetic"
        assert "partitioned.coarse_seconds" in snapshot.phases
        assert snapshot.decode_cache["hits"] > 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_partial_paths_rejected(self, tmp_path, capsys):
        status = main(
            ["profile", "--index", str(tmp_path / "missing.idx")]
        )
        assert status == 1
        assert "together" in capsys.readouterr().err

    def test_search_stats_flag(self, tmp_path, capsys):
        from repro.index.storage import write_index
        from repro.index.store import write_store
        from repro.sequences.fasta import write_fasta

        rng = np.random.default_rng(77)
        records = [
            Sequence(f"s{slot}", rng.integers(0, 4, 300, dtype=np.uint8))
            for slot in range(12)
        ]
        index = build_index(records, IndexParameters(interval_length=8))
        write_index(index, tmp_path / "c.idx")
        write_store(records, tmp_path / "c.rpsq")
        write_fasta(
            [records[3].slice(0, 120)], tmp_path / "q.fasta"
        )
        status = main(
            [
                "search",
                str(tmp_path / "c.idx"),
                str(tmp_path / "c.rpsq"),
                str(tmp_path / "q.fasta"),
                "--stats",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "--- instrumentation ---" in out
        assert "counter partitioned.queries" in out


class TestThreadSafety:
    """The instruments must stay exact under concurrent mutation."""

    def test_counter_concurrent_increments_are_exact(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer():
            for _ in range(10_000):
                counter.add(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("hits") == 80_000

    def test_histogram_concurrent_observations_are_exact(self):
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram("lat")

        def hammer():
            for _ in range(5_000):
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 30_000
        assert summary["total"] == pytest.approx(30.0, rel=1e-6)

    def test_tracer_span_stacks_are_per_thread(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4)

        def one_tree(number):
            barrier.wait()
            with tracer.span(f"root{number}"):
                with tracer.span(f"child{number}"):
                    pass

        threads = [
            threading.Thread(target=one_tree, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.roots) == 4
        for root in tracer.roots:
            number = root.name.removeprefix("root")
            assert [child.name for child in root.children] == [
                f"child{number}"
            ]

    def test_tracer_drop_counter(self):
        tracer = Tracer(max_roots=2)
        for number in range(5):
            with tracer.span(f"r{number}"):
                pass
        assert tracer.dropped == 3
        assert [root.name for root in tracer.roots] == ["r3", "r4"]
        tracer.reset()
        assert tracer.dropped == 0
        assert tracer.roots == []

"""Unit and property tests for transition-aware scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banded import banded_local_score
from repro.align.extension import extend_seed
from repro.align.kernel import best_local_score
from repro.align.pairwise import local_align
from repro.align.reference import smith_waterman_score
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet

TRANSITION_SCHEME = ScoringScheme(match=2, mismatch=-3, gap=-4, transition=-1)

short_codes = st.text(alphabet="ACGTN", min_size=1, max_size=40).map(
    alphabet.encode
)


class TestValidation:
    def test_transition_must_sit_between_mismatch_and_match(self):
        with pytest.raises(AlignmentError):
            ScoringScheme(match=1, mismatch=-1, transition=1)
        with pytest.raises(AlignmentError):
            ScoringScheme(match=1, mismatch=-1, transition=-2)

    def test_transition_equal_to_mismatch_allowed(self):
        scheme = ScoringScheme(match=1, mismatch=-1, transition=-1)
        assert scheme.score_pair(0, 2) == -1


class TestPairScores:
    def test_transitions_recognised(self):
        # A<->G and C<->T are transitions.
        assert TRANSITION_SCHEME.score_pair(0, 2) == -1
        assert TRANSITION_SCHEME.score_pair(2, 0) == -1
        assert TRANSITION_SCHEME.score_pair(1, 3) == -1
        assert TRANSITION_SCHEME.score_pair(3, 1) == -1

    def test_transversions_get_full_mismatch(self):
        for first, second in [(0, 1), (0, 3), (2, 1), (2, 3)]:
            assert TRANSITION_SCHEME.score_pair(first, second) == -3
            assert TRANSITION_SCHEME.score_pair(second, first) == -3

    def test_matches_unaffected(self):
        for code in range(4):
            assert TRANSITION_SCHEME.score_pair(code, code) == 2

    def test_wildcards_still_full_mismatch(self):
        n_code = alphabet.IUPAC_ALPHABET.index("N")
        assert TRANSITION_SCHEME.score_pair(0, n_code) == -3

    def test_profile_agrees_with_score_pair(self):
        target = alphabet.encode("ACGTN")
        profile = TRANSITION_SCHEME.target_profile(target)
        for query_code in range(4):
            for column, target_code in enumerate(target):
                assert profile[query_code, column] == (
                    TRANSITION_SCHEME.score_pair(query_code, int(target_code))
                )


class TestConsistencyAcrossAligners:
    @given(query=short_codes, target=short_codes)
    @settings(max_examples=80, deadline=None)
    def test_kernel_matches_reference(self, query, target):
        assert best_local_score(
            query, target, TRANSITION_SCHEME
        ) == smith_waterman_score(query, target, TRANSITION_SCHEME)

    @given(query=short_codes, target=short_codes)
    @settings(max_examples=40, deadline=None)
    def test_traceback_score_matches(self, query, target):
        alignment = local_align(query, target, TRANSITION_SCHEME)
        assert alignment.score == smith_waterman_score(
            query, target, TRANSITION_SCHEME
        )

    @given(query=short_codes, target=short_codes)
    @settings(max_examples=40, deadline=None)
    def test_full_band_matches(self, query, target):
        half_width = query.shape[0] + target.shape[0]
        assert banded_local_score(
            query, target, 0, half_width, TRANSITION_SCHEME
        ) == smith_waterman_score(query, target, TRANSITION_SCHEME)

    def test_extension_scores_transition_mildly(self):
        query = alphabet.encode("ACGTACGT" + "A" + "ACGTACGT")
        target = alphabet.encode("ACGTACGT" + "G" + "ACGTACGT")  # transition
        extension = extend_seed(
            query, target, 0, 0, 8, TRANSITION_SCHEME, x_drop=10
        )
        assert extension.score == 16 * 2 - 1


class TestBehaviour:
    def test_transition_rich_pair_scores_higher(self):
        """A sequence differing only by transitions outscores one
        differing by transversions under the transition scheme."""
        query = alphabet.encode("ACGTACGTACGT")
        by_transitions = alphabet.encode("GCGTGCGTGCGT")  # A->G at 0,4,8
        by_transversions = alphabet.encode("CCGTCCGTCCGT")  # A->C at 0,4,8
        transition_score = best_local_score(
            query, by_transitions, TRANSITION_SCHEME
        )
        transversion_score = best_local_score(
            query, by_transversions, TRANSITION_SCHEME
        )
        assert transition_score > transversion_score

    def test_plain_scheme_treats_both_alike(self):
        plain = ScoringScheme(match=2, mismatch=-3, gap=-4)
        query = alphabet.encode("ACGTACGTACGT")
        by_transitions = alphabet.encode("GCGTGCGTGCGT")
        by_transversions = alphabet.encode("CCGTCCGTCCGT")
        assert best_local_score(query, by_transitions, plain) == (
            best_local_score(query, by_transversions, plain)
        )

"""Property tests: the vectorised kernel vs. the scalar reference.

These are the load-bearing correctness tests for the whole system —
every search engine's scores flow through this kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.kernel import (
    TargetImage,
    best_local_score,
    column_best_scores,
    segment_best_scores,
)
from repro.align.reference import smith_waterman_score
from repro.align.scoring import SENTINEL_CODE, ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet

codes_arrays = st.text(alphabet="ACGTN", min_size=0, max_size=60).map(
    alphabet.encode
)
nonempty_codes = st.text(alphabet="ACGTN", min_size=1, max_size=60).map(
    alphabet.encode
)
schemes = st.builds(
    ScoringScheme,
    match=st.integers(min_value=1, max_value=5),
    mismatch=st.integers(min_value=-5, max_value=-1),
    gap=st.integers(min_value=-6, max_value=-1),
)


class TestAgainstReference:
    @given(query=codes_arrays, target=codes_arrays, scheme=schemes)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_smith_waterman(self, query, target, scheme):
        assert best_local_score(query, target, scheme) == smith_waterman_score(
            query, target, scheme
        )

    @given(query=nonempty_codes, target=nonempty_codes)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, query, target):
        scheme = ScoringScheme()
        assert best_local_score(query, target, scheme) == best_local_score(
            target, query, scheme
        )

    @given(sequence=nonempty_codes)
    def test_self_alignment_of_pure_bases(self, sequence):
        scheme = ScoringScheme()
        bases_only = sequence[sequence < 4]
        expected = int(bases_only.shape[0]) * scheme.match
        if bases_only.shape[0] == sequence.shape[0]:
            assert best_local_score(sequence, sequence, scheme) == expected

    @given(query=codes_arrays, target=codes_arrays)
    def test_score_is_non_negative(self, query, target):
        assert best_local_score(query, target, ScoringScheme()) >= 0

    @given(query=nonempty_codes, target=nonempty_codes, extra=nonempty_codes)
    @settings(max_examples=60, deadline=None)
    def test_appending_target_never_decreases_score(self, query, target, extra):
        scheme = ScoringScheme()
        extended = np.concatenate([target, extra])
        assert best_local_score(query, extended, scheme) >= best_local_score(
            query, target, scheme
        )


class TestEdges:
    def test_empty_query(self):
        scheme = ScoringScheme()
        assert best_local_score(
            np.empty(0, np.uint8), alphabet.encode("ACGT"), scheme
        ) == 0

    def test_empty_target(self):
        scheme = ScoringScheme()
        assert best_local_score(
            alphabet.encode("ACGT"), np.empty(0, np.uint8), scheme
        ) == 0

    def test_query_with_sentinel_rejected(self):
        scheme = ScoringScheme()
        bad = np.array([0, SENTINEL_CODE], dtype=np.uint8)
        with pytest.raises(AlignmentError):
            best_local_score(bad, alphabet.encode("ACGT"), scheme)

    def test_column_best_shape(self):
        scheme = ScoringScheme()
        target = alphabet.encode("ACGTACGT")
        profile = scheme.target_profile(target)
        col_best = column_best_scores(alphabet.encode("ACG"), profile, scheme)
        assert col_best.shape == (8,)
        assert col_best.dtype == np.int32


class TestTargetImage:
    def test_build_requires_sequences(self):
        with pytest.raises(AlignmentError):
            TargetImage.build([], ScoringScheme(), 10)

    def test_build_requires_positive_bound(self):
        with pytest.raises(AlignmentError):
            TargetImage.build([alphabet.encode("ACGT")], ScoringScheme(), 0)

    def test_sentinels_separate_sequences(self):
        scheme = ScoringScheme()
        image = TargetImage.build(
            [alphabet.encode("ACGT"), alphabet.encode("ACGT")], scheme, 8
        )
        gap_region = image.codes[4 : int(image.starts[1])]
        assert (gap_region == SENTINEL_CODE).all()

    def test_query_longer_than_bound_rejected(self):
        scheme = ScoringScheme()
        image = TargetImage.build([alphabet.encode("ACGT")], scheme, 4)
        with pytest.raises(AlignmentError, match="rebuild"):
            segment_best_scores(alphabet.encode("ACGTA"), image, scheme)

    @given(
        texts=st.lists(
            st.text(alphabet="ACGTN", min_size=0, max_size=40),
            min_size=1,
            max_size=6,
        ),
        query=st.text(alphabet="ACGT", min_size=1, max_size=25),
        scheme=schemes,
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_scores_equal_pairwise_scores(self, texts, query, scheme):
        """The concatenated scan must equal per-sequence alignment —
        i.e. sentinels leak nothing across boundaries."""
        sequences = [alphabet.encode(text) for text in texts]
        query_codes = alphabet.encode(query)
        image = TargetImage.build(sequences, scheme, len(query))
        scanned = segment_best_scores(query_codes, image, scheme)
        expected = [
            smith_waterman_score(query_codes, target, scheme)
            for target in sequences
        ]
        assert scanned.tolist() == expected

    def test_profile_is_cached_per_scheme(self):
        scheme = ScoringScheme()
        image = TargetImage.build([alphabet.encode("ACGT")], scheme, 4)
        assert image.profile_for(scheme) is image.profile_for(scheme)

    def test_empty_sequences_score_zero(self):
        scheme = ScoringScheme()
        image = TargetImage.build(
            [alphabet.encode("ACGT"), np.empty(0, np.uint8)], scheme, 4
        )
        scores = segment_best_scores(alphabet.encode("ACGT"), image, scheme)
        assert scores.tolist() == [4, 0]


class TestLongTargets:
    def test_megabase_scan_runs_and_finds_planted_match(self):
        rng = np.random.default_rng(3)
        target = rng.integers(0, 4, 300_000, dtype=np.uint8)
        query = target[150_000:150_200].copy()
        scheme = ScoringScheme()
        assert best_local_score(query, target, scheme) == 200

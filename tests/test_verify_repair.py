"""Verification, repair, crash safety, and format-v1 compatibility."""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.database import Database
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    SearchError,
)
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import SequenceStore, write_store
from repro.instrumentation import faults
from repro.sequences.record import Sequence

PARAMS = IndexParameters(interval_length=6)


def _records(count=10, length=200, seed=31):
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"vr{slot}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


@pytest.fixture()
def db_path(tmp_path):
    records = _records()
    path = tmp_path / "col.db"
    Database.create(records, path, params=PARAMS).close()
    return path, records


class TestVerify:
    def test_fresh_database_is_ok(self, db_path):
        path, _ = db_path
        report = Database.verify(path)
        assert report.ok
        assert report.issues == []

    def test_corruption_is_reported_not_raised(self, db_path):
        path, _ = db_path
        span = faults.index_sections(path / "intervals.rpix")["table"]
        faults.flip_byte(path / "intervals.rpix", span[0], mask=0x08)
        report = Database.verify(path)
        assert not report.ok
        assert report.issues

    def test_verify_collects_problems_from_both_files(self, db_path):
        path, _ = db_path
        for name, key in (
            ("intervals.rpix", faults.index_sections),
            ("sequences.rpsq", faults.store_sections),
        ):
            span = key(path / name)["header"]
            faults.flip_byte(path / name, span[0] + 1, mask=0x04)
        report = Database.verify(path)
        assert len(report.issues) >= 2

    def test_cli_verify_exit_codes(self, db_path, capsys):
        path, _ = db_path
        assert main(["verify", str(path)]) == 0
        assert "intact" in capsys.readouterr().out
        span = faults.store_sections(path / "sequences.rpsq")["payload"]
        faults.zero_page(path / "sequences.rpsq", span[0], span[1] - span[0])
        assert main(["verify", str(path)]) == 1
        assert "PROBLEM" in capsys.readouterr().out


class TestRepair:
    def _damage_index(self, path):
        span = faults.index_sections(path / "intervals.rpix")["table"]
        faults.zero_page(path / "intervals.rpix", span[0], span[1] - span[0])

    def test_repair_restores_searchable_database(self, db_path):
        path, records = db_path
        query = Sequence("q", records[3].codes[10:110].copy())
        with Database.open(path) as db:
            baseline = [hit.identifier for hit in db.search(query).hits]
        self._damage_index(path)
        with pytest.raises(CorruptionError):
            Database.open(path)
        with Database.repair(path) as repaired:
            report = repaired.search(query)
        assert [hit.identifier for hit in report.hits] == baseline
        assert Database.verify(path).ok

    def test_repair_refuses_damaged_store(self, db_path):
        path, _ = db_path
        span = faults.store_sections(path / "sequences.rpsq")["payload"]
        faults.flip_byte(path / "sequences.rpsq", span[0], mask=0x02)
        with pytest.raises(CorruptionError):
            Database.repair(path)

    def test_cli_repair(self, db_path, capsys):
        path, _ = db_path
        self._damage_index(path)
        assert main(["repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "rebuilt index" in out
        assert main(["verify", str(path)]) == 0

    def test_cli_repair_skips_intact_database(self, db_path, capsys):
        path, _ = db_path
        assert main(["repair", str(path)]) == 0
        assert "already intact" in capsys.readouterr().out


class TestCrashSafety:
    """An interrupted create never leaves an openable half-database."""

    def test_crash_at_every_fsync_point(self, tmp_path):
        records = _records(6, 120)
        for point in range(10):
            path = tmp_path / f"crash{point}.db"
            crashed = False
            try:
                with faults.crash_on_fsync(after=point):
                    Database.create(records, path, params=PARAMS).close()
            except faults.SimulatedCrash:
                crashed = True
            if crashed:
                # The directory must be either unopenable (no manifest
                # landed) or fully valid (the crash hit after the final
                # atomic manifest publish) — never a half-written state
                # that opens but fails verification.
                try:
                    Database.open(path).close()
                except (IndexFormatError, FileNotFoundError):
                    pass
                else:
                    assert Database.verify(path).ok
            else:
                assert Database.verify(path).ok
                # No later fsync point exists; stop scanning.
                break
        else:
            pytest.fail("create never completed within 10 fsync points")

    def test_create_recovers_after_crash(self, tmp_path):
        records = _records(6, 120)
        path = tmp_path / "retry.db"
        with pytest.raises(faults.SimulatedCrash):
            with faults.crash_on_fsync(after=0):
                Database.create(records, path, params=PARAMS)
        Database.create(records, path, params=PARAMS).close()
        assert Database.verify(path).ok

    def test_crash_during_replace_leaves_no_temp_files(self, tmp_path):
        records = _records(6, 120)
        path = tmp_path / "torn.db"
        with pytest.raises(faults.SimulatedCrash):
            with faults.crash_during_replace():
                Database.create(records, path, params=PARAMS)
        with pytest.raises((IndexFormatError, FileNotFoundError)):
            Database.open(path).close()
        if path.exists():
            leftovers = [n for n in os.listdir(path) if n.endswith(".tmp")]
            assert leftovers == []


class TestFormatV1Compatibility:
    def test_v1_index_opens_with_warning(self, tmp_path):
        records = _records(5, 100)
        path = tmp_path / "old.rpix"
        write_index(build_index(records, PARAMS), path, version=1)
        with pytest.warns(UserWarning, match="no integrity data"):
            with DiskIndex(path) as index:
                assert len(list(index.interval_ids())) > 0
                notes = index.verify()
        assert any("no integrity data" in note for note in notes)

    def test_v1_store_opens_with_warning(self, tmp_path):
        records = _records(5, 100)
        path = tmp_path / "old.rpsq"
        write_store(records, path, version=1)
        with pytest.warns(UserWarning, match="no integrity data"):
            with SequenceStore(path) as store:
                assert len(store) == 5
                np.testing.assert_array_equal(store.codes(2), records[2].codes)

    def test_v1_manifest_accepted(self, db_path):
        path, records = db_path
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        manifest.pop("checksums", None)
        manifest_path.write_text(json.dumps(manifest))
        with Database.open(path) as db:
            assert len(db) == len(records)
        report = Database.verify(path)
        assert report.ok
        assert any("version 1" in note for note in report.notes)


class TestDegradedOpen:
    def test_engine_unavailable_when_degraded(self, db_path):
        path, _ = db_path
        span = faults.index_sections(path / "intervals.rpix")["header_crc"]
        faults.flip_byte(path / "intervals.rpix", span[0], mask=0x80)
        with Database.open(path, on_corruption="fallback") as db:
            assert db.degraded
            with pytest.raises(SearchError):
                db.engine()


class TestMergeTempHygiene:
    def test_failed_merge_leaves_no_temp_files(self, tmp_path, monkeypatch):
        from repro.index.merge import merge_index_files
        from repro.index.postings import PostingsCodec

        parts = []
        for part in range(2):
            records = _records(4, 100, seed=part)
            part_path = tmp_path / f"part{part}.rpix"
            write_index(build_index(records, PARAMS), part_path)
            parts.append(str(part_path))

        calls = {"n": 0}
        original = PostingsCodec.encode

        def flaky_encode(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("simulated codec failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(PostingsCodec, "encode", flaky_encode)
        output = tmp_path / "merged.rpix"
        with pytest.raises(RuntimeError):
            merge_index_files(parts, str(output))
        assert not output.exists()
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.endswith(".tmp") or name.startswith("tmp")
        ]
        assert leftovers == []

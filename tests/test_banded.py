"""Unit and property tests for banded local alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banded import banded_local_score
from repro.align.reference import smith_waterman_score
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet

short_codes = st.text(alphabet="ACGT", min_size=1, max_size=30).map(
    alphabet.encode
)


class TestValidation:
    def test_negative_half_width(self):
        scheme = ScoringScheme()
        with pytest.raises(AlignmentError):
            banded_local_score(
                alphabet.encode("AC"), alphabet.encode("AC"), 0, -1, scheme
            )

    def test_empty_inputs_score_zero(self):
        scheme = ScoringScheme()
        empty = np.empty(0, dtype=np.uint8)
        assert banded_local_score(empty, alphabet.encode("AC"), 0, 4, scheme) == 0
        assert banded_local_score(alphabet.encode("AC"), empty, 0, 4, scheme) == 0


class TestAgainstFullDP:
    @given(query=short_codes, target=short_codes)
    @settings(max_examples=80, deadline=None)
    def test_full_width_band_equals_smith_waterman(self, query, target):
        """A band covering the whole matrix is unrestricted SW."""
        scheme = ScoringScheme()
        half_width = query.shape[0] + target.shape[0]
        assert banded_local_score(
            query, target, 0, half_width, scheme
        ) == smith_waterman_score(query, target, scheme)

    @given(query=short_codes, target=short_codes,
           half_width=st.integers(min_value=0, max_value=10),
           diagonal=st.integers(min_value=-10, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_band_never_exceeds_full_dp(self, query, target, half_width, diagonal):
        scheme = ScoringScheme()
        banded = banded_local_score(query, target, diagonal, half_width, scheme)
        assert 0 <= banded <= smith_waterman_score(query, target, scheme)

    @given(query=short_codes,
           half_width=st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_identity_on_centre_diagonal(self, query, half_width):
        """A perfect match lies on diagonal 0 and survives any band."""
        scheme = ScoringScheme()
        assert (
            banded_local_score(query, query, 0, half_width, scheme)
            == query.shape[0] * scheme.match
        )


class TestDiagonalTargeting:
    def test_shifted_match_needs_matching_diagonal(self):
        scheme = ScoringScheme()
        query = alphabet.encode("ACGTACGTAC")
        target = np.concatenate(
            [alphabet.encode("TTTTTTTTTT"), query]
        )  # match at diagonal +10
        on_target = banded_local_score(query, target, 10, 2, scheme)
        off_target = banded_local_score(query, target, 0, 2, scheme)
        assert on_target == 10
        assert off_target < on_target

    def test_band_outside_matrix_scores_zero(self):
        scheme = ScoringScheme()
        query = alphabet.encode("ACGT")
        target = alphabet.encode("ACGT")
        assert banded_local_score(query, target, 100, 2, scheme) == 0

    def test_indel_within_band_width(self):
        scheme = ScoringScheme()
        query = alphabet.encode("ACGTACGTACGTACGT")
        target = alphabet.encode("ACGTACGTTACGTACGT")  # one insertion
        wide = banded_local_score(query, target, 0, 3, scheme)
        assert wide >= 16 * scheme.match + scheme.gap

"""Unit tests for bit-level stream I/O."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import BitStreamError, CodecValueError


class TestWriter:
    def test_single_byte(self):
        writer = BitWriter()
        writer.write_bits(0b10110010, 8)
        assert writer.getvalue() == bytes([0b10110010])

    def test_partial_byte_padded_with_zeros(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(1, 5)
        writer.write_bits(0, 9)
        assert writer.bit_length == 14

    def test_value_too_wide_raises(self):
        writer = BitWriter()
        with pytest.raises(CodecValueError):
            writer.write_bits(4, 2)

    def test_negative_width_raises(self):
        with pytest.raises(CodecValueError):
            BitWriter().write_bits(0, -1)

    def test_negative_value_raises(self):
        with pytest.raises(CodecValueError):
            BitWriter().write_bits(-1, 4)

    def test_unary_layout(self):
        writer = BitWriter()
        writer.write_unary(3)  # 1110
        assert writer.getvalue() == bytes([0b11100000])

    def test_huge_unary_value(self):
        writer = BitWriter()
        writer.write_unary(100)
        reader = BitReader(writer.getvalue())
        assert reader.read_unary() == 100

    def test_write_bytes_requires_alignment(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        with pytest.raises(BitStreamError):
            writer.write_bytes(b"x")

    def test_align_then_write_bytes(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.align()
        writer.write_bytes(b"\xff")
        assert writer.getvalue() == bytes([0b10000000, 0xFF])


class TestReader:
    def test_read_bits(self):
        reader = BitReader(bytes([0b10110010]))
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(5) == 0b10010

    def test_read_zero_bits(self):
        assert BitReader(b"").read_bits(0) == 0

    def test_exhaustion_raises(self):
        reader = BitReader(bytes([0xFF]))
        reader.read_bits(8)
        with pytest.raises(BitStreamError):
            reader.read_bits(1)

    def test_unary_across_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(0b1111111, 7)  # 7 ones
        writer.write_bits(0b10, 2)  # one more 1, then the 0
        reader = BitReader(writer.getvalue())
        assert reader.read_unary() == 8

    def test_aligned_bytes_view(self):
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        writer.write_bytes(bytes([1, 2, 3]))
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(8) == 0xAB
        view = reader.read_aligned_bytes(3)
        assert view.tolist() == [1, 2, 3]
        assert isinstance(view, np.ndarray)

    def test_aligned_bytes_mid_byte_raises(self):
        reader = BitReader(bytes([0xFF, 0x00]))
        reader.read_bits(3)
        with pytest.raises(BitStreamError):
            reader.read_aligned_bytes(1)

    def test_aligned_bytes_after_align(self):
        reader = BitReader(bytes([0xFF, 0x42]))
        reader.read_bits(3)
        reader.align()
        assert reader.read_aligned_bytes(1).tolist() == [0x42]

    def test_aligned_bytes_exhaustion(self):
        with pytest.raises(BitStreamError):
            BitReader(b"a").read_aligned_bytes(2)

    def test_bits_remaining(self):
        reader = BitReader(bytes(4))
        reader.read_bits(5)
        assert reader.bits_remaining == 27


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2**20), st.just(21)),
            max_size=100,
        )
    )
    def test_fixed_width_roundtrip(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in pairs:
            assert reader.read_bits(width) == value

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=60))
    def test_unary_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_unary() == value

    @given(st.data())
    def test_mixed_widths_roundtrip(self, data):
        pairs = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=48).flatmap(
                    lambda width: st.tuples(
                        st.integers(min_value=0, max_value=(1 << width) - 1),
                        st.just(width),
                    )
                ),
                max_size=60,
            )
        )
        writer = BitWriter()
        for value, width in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in pairs:
            assert reader.read_bits(width) == value

"""Pluggable coarse backends: signature format, dispatch, recall.

The inverted backend's behaviour is pinned elsewhere (the parity
fixtures and the coarse/engine suites); this module covers the backend
*interface* — registry, manifest round-trip, bit-identical inverted
artifacts through the backend path — and the signature backend end to
end: on-disk format, corruption handling, engine integration on every
layout (single, sharded, LSM), auto-compaction, and recall against the
exhaustive oracle on the corpora the backends bench uses.
"""

import json
import zlib

import numpy as np
import pytest

from tests.conftest import mean_oracle_recall
from repro.coarse_backends import get_backend
from repro.coarse_backends.base import (
    ARTIFACT_NAMES,
    DEFAULT_BACKEND,
    artifact_name,
    coarse_from_manifest,
    coarse_section,
)
from repro.coarse_backends.signature import (
    DEFAULT_SIGNATURE_PARAMS,
    SignatureIndex,
    SignatureRanker,
    signature_rows,
    slice_rows_for,
    write_signature,
)
from repro.database import AutoCompactPolicy, Database
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    IndexParameterError,
    ReproError,
    SearchError,
)
from repro.index.builder import IndexParameters, build_index
from repro.index.intervals import IntervalExtractor
from repro.index.storage import write_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation.instruments import Instruments
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence
from repro.workloads.queries import make_family_queries
from repro.workloads.synthetic import (
    MutationModel,
    WorkloadSpec,
    generate_collection,
)

PARAMS = IndexParameters(interval_length=8)


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(73)
    made = [
        Sequence(f"sig{slot:02d}", rng.integers(0, 4, 260, dtype=np.uint8))
        for slot in range(24)
    ]
    # Plant a relative so queries have a two-document answer set.
    relative = made[17].codes.copy()
    relative[40:180] = made[3].codes[40:180]
    made[17] = Sequence("sig17", relative)
    return made


@pytest.fixture(scope="module")
def signature_file(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("rpsg") / "signatures.rpsg"
    write_signature(
        records, path, PARAMS, {"docs_per_block": 7, "hashes": 2}
    )
    return path


# -- registry and manifest plumbing --------------------------------------


class TestRegistry:
    def test_known_backends(self):
        assert get_backend("inverted").name == "inverted"
        assert get_backend("signature").name == "signature"
        assert get_backend("inverted") is get_backend("inverted")

    def test_unknown_backend_rejected(self):
        # A bad name reaches us through a manifest, so it is a format
        # error, not a parameter error.
        with pytest.raises(IndexFormatError, match="unknown coarse"):
            get_backend("holographic")

    def test_artifact_names(self):
        assert artifact_name("inverted") == "intervals.rpix"
        assert artifact_name("signature") == "signatures.rpsg"
        with pytest.raises(IndexFormatError):
            artifact_name("holographic")

    def test_coarse_section_normalises(self):
        section = coarse_section("signature", {"hashes": 3})
        assert section["backend"] == "signature"
        assert section["params"]["hashes"] == 3
        assert section["params"]["docs_per_block"] == 64

    def test_manifest_without_section_defaults_to_inverted(self):
        assert coarse_from_manifest({}) == {
            "backend": DEFAULT_BACKEND,
            "params": {},
        }

    def test_inverted_rejects_params(self):
        with pytest.raises(IndexParameterError, match="no backend parameters"):
            get_backend("inverted").normalise_params({"hashes": 2})


class TestSignatureParams:
    def test_defaults(self):
        assert get_backend("signature").normalise_params(None) == (
            DEFAULT_SIGNATURE_PARAMS
        )

    @pytest.mark.parametrize(
        "bad",
        [
            {"false_positive_rate": 0.0},
            {"false_positive_rate": 1.0},
            {"hashes": 0},
            {"docs_per_block": 0},
            {"mystery_knob": 1},
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(IndexParameterError):
            get_backend("signature").normalise_params(bad)


class TestInvertedThroughBackend:
    def test_artifact_is_bit_identical_to_direct_write(
        self, records, tmp_path
    ):
        """The re-homed inverted builder must not change a single byte."""
        direct = tmp_path / "direct.rpix"
        write_index(build_index(records, PARAMS), direct)
        via_backend = tmp_path / "backend"
        via_backend.mkdir()
        get_backend("inverted").build_artifact(
            via_backend, records, PARAMS, {}
        )
        assert (
            via_backend / "intervals.rpix"
        ).read_bytes() == direct.read_bytes()


# -- the signature file itself -------------------------------------------


class TestSignatureFormat:
    def test_round_trip(self, signature_file, records):
        with SignatureIndex(signature_file) as index:
            assert index.coarse_backend == "signature"
            assert index.collection.identifiers == tuple(
                record.identifier for record in records
            )
            assert index.params.interval_length == 8
            assert index.signature_params["docs_per_block"] == 7
            assert index.num_blocks == 4  # 24 docs in blocks of 7
            assert index.signature_bytes > 0
            assert index.verify() == []

    def test_membership_counts_find_own_kmers(self, signature_file, records):
        extractor = IntervalExtractor(8, stride=1)
        with SignatureIndex(signature_file) as index:
            ids = extractor.extract_distinct(records[9].codes)
            counts = index.block_membership_counts(1, ids)  # docs 7..13
            assert counts.shape == (7,)
            # Bloom filters never produce false negatives: document 9
            # must contain every one of its own k-mers.
            assert counts[2] == ids.shape[0]

    def test_slice_rows_floor(self):
        assert slice_rows_for(0, 1, 0.3) == 8
        assert slice_rows_for(100, 1, 0.3) > 8

    def test_signature_rows_deterministic_and_bounded(self):
        ids = np.arange(50, dtype=np.uint64)
        first = signature_rows(ids, 3, 97)
        again = signature_rows(ids, 3, 97)
        assert first.shape == (50, 3)
        assert np.array_equal(first, again)
        assert first.min() >= 0 and first.max() < 97

    def test_bad_magic_rejected(self, tmp_path):
        bad = tmp_path / "signatures.rpsg"
        bad.write_bytes(b"NOPE" + bytes(64))
        with pytest.raises(IndexFormatError, match="magic"):
            SignatureIndex(bad)

    def test_header_corruption_is_corruption_error(
        self, signature_file, tmp_path
    ):
        raw = bytearray(signature_file.read_bytes())
        raw[16] ^= 0xFF  # inside the header JSON
        target = tmp_path / "signatures.rpsg"
        target.write_bytes(bytes(raw))
        with pytest.raises(CorruptionError, match="header checksum"):
            SignatureIndex(target)

    def test_block_corruption_caught_lazily(self, signature_file, tmp_path):
        target = tmp_path / "signatures.rpsg"
        target.write_bytes(_with_flipped_block(signature_file, 2))
        with SignatureIndex(target) as index:
            extractor = IntervalExtractor(8, stride=1)
            ids = extractor.extract_distinct(
                np.arange(40, dtype=np.uint8) % 4
            )
            index.block_membership_counts(0, ids)  # intact block fine
            with pytest.raises(CorruptionError, match="block 2"):
                index.block_membership_counts(2, ids)
            assert any("block 2" in issue for issue in index.verify())


def _with_flipped_block(path, slot):
    """The signature file's bytes with one payload byte of ``slot`` flipped."""
    raw = bytearray(path.read_bytes())
    magic_size = 4 + 2 + 4 + 4  # prefix + crc
    (header_length,) = np.frombuffer(raw[6:10], dtype=np.uint32)
    header = json.loads(bytes(raw[magic_size : magic_size + header_length]))
    block = header["blocks"][slot]
    position = magic_size + int(header_length) + block["offset"]
    raw[position] ^= 0xFF
    assert (
        zlib.crc32(raw[position : position + block["length"]]) != block["crc"]
    )
    return bytes(raw)


# -- the ranker -----------------------------------------------------------


class TestSignatureRanker:
    def test_self_retrieval_and_contract(self, signature_file, records):
        with SignatureIndex(signature_file) as index:
            ranker = SignatureRanker(index)
            candidates = ranker.rank(records[3].codes[40:180], cutoff=10)
            assert candidates[0].ordinal in (3, 17)
            assert {c.ordinal for c in candidates[:2]} == {3, 17}
            scores = [c.coarse_score for c in candidates]
            assert scores == sorted(scores, reverse=True)
            assert all(score > 0 for score in scores)
            ordinals = [c.ordinal for c in candidates]
            for left, right in zip(candidates, candidates[1:]):
                if left.coarse_score == right.coarse_score:
                    assert left.ordinal < right.ordinal
            assert len(ordinals) == len(set(ordinals))

    def test_rejects_non_count_scorer(self, signature_file):
        with SignatureIndex(signature_file) as index:
            with pytest.raises(SearchError, match="'count'"):
                SignatureRanker(index, scorer="weighted")

    def test_rejects_bad_cutoff(self, signature_file):
        with SignatureIndex(signature_file) as index:
            with pytest.raises(SearchError, match="cutoff"):
                SignatureRanker(index).rank(
                    np.zeros(40, dtype=np.uint8), cutoff=0
                )

    def test_short_query_returns_nothing(self, signature_file):
        with SignatureIndex(signature_file) as index:
            assert SignatureRanker(index).rank(
                np.zeros(4, dtype=np.uint8), cutoff=5
            ) == []

    def test_skip_quarantines_block(self, signature_file, tmp_path, records):
        target = tmp_path / "signatures.rpsg"
        target.write_bytes(_with_flipped_block(signature_file, 1))
        instruments = Instruments()
        with SignatureIndex(target) as index:
            ranker = SignatureRanker(index, on_corruption="skip")
            ranker.set_instruments(instruments)
            query = records[9].codes[30:170]  # lives in block 1
            first = ranker.rank(query, cutoff=30)
            assert all(c.ordinal not in range(7, 14) for c in first)
            # Quarantine is sticky: the second scan skips the block
            # without re-reading it, and the counter stays at one.
            ranker.rank(query, cutoff=30)
            counters = instruments.metrics.snapshot()["counters"]
            assert counters["signature.quarantined_blocks"] == 1
            assert counters["signature.blocks_scanned"] == 6  # 3 + 3

    def test_raise_propagates(self, signature_file, tmp_path, records):
        target = tmp_path / "signatures.rpsg"
        target.write_bytes(_with_flipped_block(signature_file, 1))
        with SignatureIndex(target) as index:
            with pytest.raises(CorruptionError):
                SignatureRanker(index).rank(records[9].codes, cutoff=5)


# -- Database integration, every layout ----------------------------------


class TestDatabaseSignature:
    @pytest.fixture(scope="class")
    def single(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("dbsig") / "single.db"
        database = Database.create(
            records,
            path,
            params=PARAMS,
            coarse_backend="signature",
            coarse_params={"docs_per_block": 7},
        )
        yield database
        database.close()

    def test_layout_and_manifest(self, single):
        assert (single.path / "signatures.rpsg").exists()
        assert not (single.path / "intervals.rpix").exists()
        assert single.manifest["coarse"]["backend"] == "signature"
        assert single.manifest["coarse"]["params"]["docs_per_block"] == 7
        assert single.coarse_backend == "signature"
        assert "signatures.rpsg" in single.manifest["checksums"]
        assert "signature coarse backend" in single.describe()

    def test_search_and_engine_surface(self, single, records):
        report = single.search(records[3].slice(40, 180), top_k=4)
        assert {hit.ordinal for hit in report.hits[:2]} == {3, 17}
        assert single.engine().coarse_backend == "signature"

    def test_reopen(self, single, records):
        with Database.open(single.path) as reopened:
            assert reopened.coarse_backend == "signature"
            best = reopened.search(records[3].slice(40, 180), top_k=1)
            assert best.best().ordinal in (3, 17)

    def test_frames_mode_rejected(self, single):
        with pytest.raises(SearchError, match="frames"):
            single.engine(fine_mode="frames")

    def test_non_count_scorer_rejected(self, single):
        with pytest.raises(SearchError, match="'count'"):
            single.engine(coarse_scorer="weighted")

    def test_verify_intact(self, single):
        report = Database.verify(single.path)
        assert report.ok, report.issues

    def test_sharded(self, records, tmp_path):
        database = Database.create(
            records,
            tmp_path / "sharded.db",
            params=PARAMS,
            shards=3,
            coarse_backend="signature",
        )
        try:
            assert database.coarse_backend == "signature"
            for entry in database.manifest["shards"]["layout"]:
                shard_dir = database.path / entry["name"]
                assert (shard_dir / "signatures.rpsg").exists()
            assert database.engine().coarse_backend == "signature"
            report = database.search(records[3].slice(40, 180), top_k=4)
            assert {hit.ordinal for hit in report.hits[:2]} == {3, 17}
            assert Database.verify(database.path).ok
        finally:
            database.close()

    def test_sharded_matches_single(self, single, records, tmp_path):
        sharded = Database.create(
            records,
            tmp_path / "parity.db",
            params=PARAMS,
            shards=3,
            coarse_backend="signature",
        )
        try:
            for slot in (0, 3, 9, 17):
                query = records[slot].slice(30, 200)
                expected = [
                    (h.ordinal, h.score, h.coarse_score)
                    for h in single.search(query, top_k=8).hits
                ]
                got = [
                    (h.ordinal, h.score, h.coarse_score)
                    for h in sharded.search(query, top_k=8).hits
                ]
                assert got == expected
        finally:
            sharded.close()

    def test_repair_rebuilds_missing_artifact(self, records, tmp_path):
        path = tmp_path / "hurt.db"
        Database.create(
            records, path, params=PARAMS, coarse_backend="signature"
        ).close()
        (path / "signatures.rpsg").unlink()
        assert not Database.verify(path).ok
        repaired = Database.repair(path)
        try:
            assert repaired.coarse_backend == "signature"
            assert (path / "signatures.rpsg").exists()
            assert repaired.search(
                records[5].slice(40, 200), top_k=1
            ).best().ordinal == 5
        finally:
            repaired.close()
        assert Database.verify(path).ok

    def test_fallback_answers_through_block_corruption(
        self, records, tmp_path
    ):
        path = tmp_path / "flip.db"
        Database.create(
            records,
            path,
            params=PARAMS,
            coarse_backend="signature",
            coarse_params={"docs_per_block": 7},
        ).close()
        artifact = path / "signatures.rpsg"
        artifact.write_bytes(_with_flipped_block(artifact, 1))
        with Database.open(path, on_corruption="fallback") as database:
            query = records[9].slice(30, 170)  # answer lives in block 1
            report = database.search(query, top_k=3)
            assert report.best().ordinal == 9
        with Database.open(path, on_corruption="raise") as database:
            with pytest.raises(CorruptionError):
                database.search(records[9].slice(30, 170), top_k=3)


class TestLsmSignature:
    def test_ingest_delete_compact(self, records, tmp_path):
        database = Database.create(
            records[:16],
            tmp_path / "live.db",
            params=PARAMS,
            shards=2,
            coarse_backend="signature",
        )
        try:
            database.add_records(records[16:20])
            database.add_records(records[20:])
            delta_dirs = [
                database.path / entry["name"]
                for entry in database.manifest["lsm"]["deltas"]["layout"]
            ]
            assert len(delta_dirs) == 2
            for delta in delta_dirs:
                assert (delta / "signatures.rpsg").exists()
                assert not (delta / "intervals.rpix").exists()
            database.delete([records[1].identifier])
            assert database.coarse_backend == "signature"

            database.compact()
            assert database.delta_shards == 0
            assert database.coarse_backend == "signature"
            for entry in database.manifest["lsm"]["base"]["layout"]:
                assert (
                    database.path / entry["name"] / "signatures.rpsg"
                ).exists()

            # Post-compaction results must match a fresh signature build
            # over the same logical collection: the compactor rebuilt the
            # signatures rather than reusing the inverted fast-merge path.
            survivors = [
                record
                for record in records
                if record.identifier != records[1].identifier
            ]
            fresh = Database.create(
                survivors,
                tmp_path / "fresh.db",
                params=PARAMS,
                coarse_backend="signature",
            )
            try:
                for slot in (0, 3, 9, 17):
                    query = records[slot].slice(30, 200)
                    expected = [
                        (h.identifier, h.score)
                        for h in fresh.search(query, top_k=6).hits
                    ]
                    got = [
                        (h.identifier, h.score)
                        for h in database.search(query, top_k=6).hits
                    ]
                    assert got == expected
            finally:
                fresh.close()
        finally:
            database.close()


class TestAutoCompact:
    def test_policy_validation(self):
        with pytest.raises(IndexParameterError, match="max_delta_shards"):
            AutoCompactPolicy(max_delta_shards=0)
        with pytest.raises(IndexParameterError, match="max_tombstone_ratio"):
            AutoCompactPolicy(max_tombstone_ratio=0.0)
        with pytest.raises(IndexParameterError, match="max_tombstone_ratio"):
            AutoCompactPolicy(max_tombstone_ratio=1.5)

    def test_should_compact(self):
        policy = AutoCompactPolicy(
            max_delta_shards=2, max_tombstone_ratio=0.25
        )
        assert not policy.should_compact(2, 0, 100)
        assert policy.should_compact(3, 0, 100)
        assert not policy.should_compact(0, 25, 100)
        assert policy.should_compact(0, 26, 100)
        assert not policy.should_compact(0, 0, 0)

    def test_delta_threshold_triggers(self, records, tmp_path):
        policy = AutoCompactPolicy(max_delta_shards=1)
        database = Database.create(
            records[:12], tmp_path / "auto.db", params=PARAMS, shards=2
        )
        instruments = Instruments()
        database.set_instruments(instruments)
        try:
            database.add_records(records[12:16], auto_compact=policy)
            assert database.delta_shards == 1  # under the limit: no fire
            database.add_records(records[16:20], auto_compact=policy)
            assert database.delta_shards == 0  # fired after the commit
            counters = instruments.metrics.snapshot()["counters"]
            assert counters["lsm.auto_compactions"] == 1
            assert counters["lsm.compactions"] == 1
            assert len(database) == 20
        finally:
            database.close()

    def test_tombstone_ratio_triggers(self, records, tmp_path):
        policy = AutoCompactPolicy(
            max_delta_shards=50, max_tombstone_ratio=0.2
        )
        database = Database.create(
            records[:10], tmp_path / "autodel.db", params=PARAMS, shards=2
        )
        instruments = Instruments()
        database.set_instruments(instruments)
        try:
            database.delete([records[0].identifier], auto_compact=policy)
            assert database.tombstone_count == 1  # 0.1 <= 0.2: no fire
            database.delete(
                [records[1].identifier, records[2].identifier],
                auto_compact=policy,
            )
            assert database.tombstone_count == 0  # compacted away
            assert len(database) == 7
            counters = instruments.metrics.snapshot()["counters"]
            assert counters["lsm.auto_compactions"] == 1
        finally:
            database.close()

    def test_none_policy_never_fires(self, records, tmp_path):
        database = Database.create(
            records[:10], tmp_path / "manual.db", params=PARAMS, shards=2
        )
        try:
            for start in (10, 14, 18):
                database.add_records(records[start : start + 4])
            assert database.delta_shards == 3
        finally:
            database.close()


# -- recall against the exhaustive oracle --------------------------------


def _recall_world(tmp_path_factory, name, spec, seed):
    collection = generate_collection(spec)
    records = list(collection.sequences)
    queries = [
        case.query
        for case in make_family_queries(
            collection, 6, query_length=120, seed=seed
        )
    ]
    longest = max(len(query) for query in queries)
    oracle = ExhaustiveSearcher(
        MemorySequenceSource(records), max_query_length=longest
    )
    root = tmp_path_factory.mktemp(name)
    databases = {
        backend: Database.create(
            records, root / f"{backend}.db", coarse_backend=backend
        )
        for backend in ("inverted", "signature")
    }
    return oracle, queries, databases


@pytest.fixture(scope="module")
def standard_world(tmp_path_factory):
    spec = WorkloadSpec(
        num_families=8,
        family_size=4,
        num_background=80,
        mean_length=300,
        mutation=MutationModel(0.1, 0.02, 0.02),
        seed=9,
    )
    oracle, queries, databases = _recall_world(
        tmp_path_factory, "recall-std", spec, seed=11
    )
    yield oracle, queries, databases
    for database in databases.values():
        database.close()


@pytest.fixture(scope="module")
def repetitive_world(tmp_path_factory):
    spec = WorkloadSpec(
        num_families=10,
        family_size=10,
        num_background=12,
        mean_length=300,
        mutation=MutationModel(0.02, 0.005, 0.005),
        seed=10,
    )
    oracle, queries, databases = _recall_world(
        tmp_path_factory, "recall-rep", spec, seed=12
    )
    yield oracle, queries, databases
    for database in databases.values():
        database.close()


class TestRecall:
    @pytest.mark.parametrize("corpus", ["standard_world", "repetitive_world"])
    def test_inverted_recall_is_perfect(self, corpus, request):
        oracle, queries, databases = request.getfixturevalue(corpus)
        recall = mean_oracle_recall(
            databases["inverted"], oracle, queries, top_k=4, coarse_cutoff=200
        )
        assert recall == 1.0

    @pytest.mark.parametrize("corpus", ["standard_world", "repetitive_world"])
    def test_signature_recall_above_floor(self, corpus, request):
        oracle, queries, databases = request.getfixturevalue(corpus)
        recall = mean_oracle_recall(
            databases["signature"],
            oracle,
            queries,
            top_k=4,
            coarse_cutoff=200,
        )
        assert recall >= 0.95

    def test_signature_is_smaller(self, standard_world):
        _, _, databases = standard_world
        assert (
            databases["signature"].manifest["index_bytes"]
            < databases["inverted"].manifest["index_bytes"]
        )


class TestOracleRecallMetric:
    def test_perfect_and_partial(self):
        assert mean_oracle_recall is not None  # the conftest helper exists
        from repro.eval.metrics import oracle_recall_at

        assert oracle_recall_at([9, 8, 7], [9, 8, 7, 1], 3) == 1.0
        assert oracle_recall_at([9, 1, 1], [9, 8, 7, 1], 3) == pytest.approx(
            1 / 3
        )
        # Boundary tie: any of the score-7 documents satisfies rank 3.
        assert oracle_recall_at([9, 8, 7], [9, 8, 7, 7], 3) == 1.0
        # Short rankings are penalised for the empty slots.
        assert oracle_recall_at([9], [9, 8, 7], 3) == pytest.approx(1 / 3)
        with pytest.raises(ReproError, match="cutoff"):
            oracle_recall_at([1], [1], 0)
        with pytest.raises(ReproError, match="oracle supplied"):
            oracle_recall_at([1, 1, 1], [1, 1], 3)


class TestBackendsBench:
    def test_document_shape(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.bench.runner import run_backends_bench

        document = run_backends_bench(num_queries=2, seed=5)
        names = set(document.metrics)
        for corpus in ("e3", "repetitive"):
            for backend in ("inverted", "signature"):
                assert f"backends.{corpus}.{backend}.recall" in names
                assert f"backends.{corpus}.{backend}.coarse_bytes" in names
            assert f"backends.{corpus}.size_ratio" in names
            assert f"backends.{corpus}.signature_smaller" in names
        assert document.value("backends.e3.inverted.recall") == 1.0
        assert document.value("backends.e3.signature_smaller") == 1.0
        assert document.value("backends.e3.size_ratio") < 1.0
        assert document.meta["coarse_backend"] == "inverted+signature"

"""Integration across workload variations: composition skew, wildcard
data, mixed lengths, transition scoring — the whole pipeline each time."""

import numpy as np
import pytest

from repro.align.scoring import ScoringScheme
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence
from repro.workloads.queries import make_family_queries
from repro.workloads.synthetic import WorkloadSpec, generate_collection


def run_pipeline(collection, queries, **engine_kwargs):
    records = list(collection.sequences)
    index = build_index(records, IndexParameters(interval_length=8))
    engine = PartitionedSearchEngine(
        index, MemorySequenceSource(records), coarse_cutoff=15,
        **engine_kwargs,
    )
    found = 0
    for case in queries:
        report = engine.search(case.query, top_k=10)
        if case.source_ordinal in report.ordinals():
            found += 1
    return found / len(queries)


class TestCompositionSkew:
    @pytest.mark.parametrize("gc_content", [0.2, 0.5, 0.8])
    def test_pipeline_robust_to_composition(self, gc_content):
        collection = generate_collection(
            WorkloadSpec(num_families=4, family_size=3, num_background=40,
                         mean_length=400, gc_content=gc_content, seed=6)
        )
        queries = make_family_queries(collection, 5, query_length=150, seed=2)
        assert run_pipeline(collection, queries) == 1.0

    def test_skew_shrinks_effective_vocabulary(self):
        """Composition skew concentrates mass on few intervals, so the
        distinct-interval count drops — the indexing-relevant statistic
        the workload generator is asked to control."""
        def vocabulary_at(gc_content):
            collection = generate_collection(
                WorkloadSpec(num_families=0, num_background=60,
                             mean_length=500, gc_content=gc_content, seed=6)
            )
            index = build_index(
                list(collection.sequences), IndexParameters(interval_length=8)
            )
            return index.vocabulary_size

        assert vocabulary_at(0.9) < vocabulary_at(0.5)


class TestWildcardData:
    def test_pipeline_with_wildcarded_collection(self):
        collection = generate_collection(
            WorkloadSpec(num_families=4, family_size=3, num_background=40,
                         mean_length=400, wildcard_rate=0.005, seed=7)
        )
        queries = make_family_queries(collection, 5, query_length=150, seed=3)
        assert run_pipeline(collection, queries) >= 0.8

    def test_heavily_wildcarded_sequences_still_indexable(self):
        rng = np.random.default_rng(8)
        records = []
        for slot in range(10):
            codes = rng.integers(0, 4, 200, dtype=np.uint8)
            codes[rng.random(200) < 0.2] = 14  # 20% N
            records.append(Sequence(f"w{slot}", codes))
        index = build_index(records, IndexParameters(interval_length=6))
        assert index.collection.num_sequences == 10
        # Wildcard-free windows still produce postings.
        assert index.pointer_count > 0


class TestMixedLengths:
    def test_collection_with_fragments_shorter_than_k(self):
        rng = np.random.default_rng(9)
        records = [
            Sequence("long0", rng.integers(0, 4, 400, dtype=np.uint8)),
            Sequence("tiny", rng.integers(0, 4, 4, dtype=np.uint8)),
            Sequence("long1", rng.integers(0, 4, 400, dtype=np.uint8)),
            Sequence("empty_ish", rng.integers(0, 4, 1, dtype=np.uint8)),
            Sequence("long2", rng.integers(0, 4, 400, dtype=np.uint8)),
        ]
        index = build_index(records, IndexParameters(interval_length=8))
        engine = PartitionedSearchEngine(
            index, MemorySequenceSource(records), coarse_cutoff=5
        )
        query = records[2].codes[100:250]
        report = engine.search(query)
        assert report.best().ordinal == 2

    def test_extreme_length_spread(self):
        collection = generate_collection(
            WorkloadSpec(num_families=3, family_size=3, num_background=30,
                         mean_length=600, length_spread=0.9, seed=10)
        )
        queries = make_family_queries(collection, 4, query_length=120, seed=4)
        assert run_pipeline(collection, queries) == 1.0


class TestAlternativeSchemesEndToEnd:
    def test_transition_scheme_through_the_whole_engine(self):
        collection = generate_collection(
            WorkloadSpec(num_families=4, family_size=3, num_background=30,
                         mean_length=400, seed=11)
        )
        records = list(collection.sequences)
        index = build_index(records, IndexParameters(interval_length=8))
        scheme = ScoringScheme(match=2, mismatch=-3, gap=-4, transition=-1)
        engine = PartitionedSearchEngine(
            index, MemorySequenceSource(records), scheme=scheme,
            coarse_cutoff=15,
        )
        exhaustive = ExhaustiveSearcher(records, scheme=scheme,
                                        max_query_length=256)
        queries = make_family_queries(collection, 3, query_length=150, seed=5)
        for case in queries:
            ours = engine.search(case.query, top_k=5)
            oracle = exhaustive.search(case.query, top_k=5)
            assert ours.best().ordinal == oracle.best().ordinal
            assert ours.best().score == oracle.best().score

    def test_heavy_gap_penalty_end_to_end(self):
        collection = generate_collection(
            WorkloadSpec(num_families=3, family_size=3, num_background=20,
                         mean_length=300, seed=12)
        )
        queries = make_family_queries(collection, 3, query_length=120, seed=6)
        scheme = ScoringScheme(match=1, mismatch=-2, gap=-8)
        assert run_pipeline(collection, queries, scheme=scheme) == 1.0

"""Robustness fuzzing: corrupt on-disk artefacts must fail *cleanly*.

A truncated or bit-flipped index may raise a repro error (preferred) or
— for corruption inside codec payloads that still parses structurally —
decode to wrong values; what it must never do is crash with an
unrelated exception type, hang, or read out of bounds.  These tests pin
the failure envelope.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.direct import decode_sequence, encode_sequence
from repro.errors import ReproError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import SequenceStore, write_store
from repro.sequences.record import Sequence

#: Exceptions a corrupted artefact is allowed to surface: the library's
#: own taxonomy, plus the bounded set raised by the stdlib parsers the
#: formats delegate to (struct/json/unicode decoding).
ALLOWED = (ReproError, ValueError, KeyError, TypeError, EOFError,
           UnicodeDecodeError, OverflowError, MemoryError)


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    rng = np.random.default_rng(141)
    records = [
        Sequence(f"fz{slot}", rng.integers(0, 4, 150, dtype=np.uint8))
        for slot in range(8)
    ]
    workdir = tmp_path_factory.mktemp("fuzz")
    index_path = workdir / "x.rpix"
    store_path = workdir / "x.rpsq"
    write_index(build_index(records, IndexParameters(interval_length=6)),
                index_path)
    write_store(records, store_path)
    return index_path.read_bytes(), store_path.read_bytes(), workdir


class TestIndexCorruption:
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_flip_never_crashes_unexpectedly(
        self, artefacts, position, flip
    ):
        index_bytes, _, workdir = artefacts
        data = bytearray(index_bytes)
        data[position % len(data)] ^= flip
        path = workdir / "flip.rpix"
        path.write_bytes(bytes(data))
        try:
            with DiskIndex(path) as index:
                for interval in list(index.interval_ids())[:20]:
                    index.docs_counts(interval)
        except ALLOWED:
            pass

    @given(cut=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_crashes_unexpectedly(self, artefacts, cut):
        index_bytes, _, workdir = artefacts
        path = workdir / "cut.rpix"
        path.write_bytes(index_bytes[: cut % len(index_bytes)])
        try:
            with DiskIndex(path) as index:
                list(index.interval_ids())
        except ALLOWED:
            pass


class TestStoreCorruption:
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_flip_never_crashes_unexpectedly(
        self, artefacts, position, flip
    ):
        _, store_bytes, workdir = artefacts
        data = bytearray(store_bytes)
        data[position % len(data)] ^= flip
        path = workdir / "flip.rpsq"
        path.write_bytes(bytes(data))
        try:
            with SequenceStore(path) as store:
                for ordinal in range(len(store)):
                    store.codes(ordinal)
        except ALLOWED:
            pass


class TestDirectCodingCorruption:
    @given(
        payload=st.binary(min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash_unexpectedly(self, payload):
        try:
            decode_sequence(payload)
        except ALLOWED:
            pass

    @given(
        text=st.text(alphabet="ACGTN", min_size=1, max_size=60),
        position=st.integers(min_value=0, max_value=10**4),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=100, deadline=None)
    def test_flipped_payload_never_crashes_unexpectedly(
        self, text, position, flip
    ):
        from repro.sequences import alphabet

        payload = bytearray(encode_sequence(alphabet.encode(text)))
        payload[position % len(payload)] ^= flip
        try:
            decode_sequence(bytes(payload))
        except ALLOWED:
            pass

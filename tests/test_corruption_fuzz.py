"""Robustness: corrupt on-disk artefacts must fail *cleanly*.

Two complementary layers:

* a **deterministic fault matrix** driven by
  :mod:`repro.instrumentation.faults` — every structural section of
  both v2 file formats gets truncation, bit-flip, and zero-page
  faults, and each must surface as a typed
  :class:`~repro.errors.CorruptionError` (or, for the pre-checksum
  prefix, an :class:`~repro.errors.IndexFormatError`), never an
  uncaught low-level exception, hang, or silent wrong answer;
* **property-based fuzzing** (hypothesis) that hammers random
  positions as a safety net for anything the matrix misses.

The matrix also pins the degradation policies: with
``on_corruption="skip"`` a damaged posting list or record is
quarantined and search still answers; with ``"fallback"`` the query is
re-answered exhaustively from the store.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.direct import decode_sequence, encode_sequence
from repro.database import Database
from repro.errors import CorruptionError, IndexFormatError, ReproError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import SequenceStore, write_store
from repro.instrumentation import faults
from repro.sequences.record import Sequence

#: Exceptions a corrupted artefact is allowed to surface: the library's
#: own taxonomy, plus the bounded set raised by the stdlib parsers the
#: formats delegate to (struct/json/unicode decoding).
ALLOWED = (ReproError, ValueError, KeyError, TypeError, EOFError,
           UnicodeDecodeError, OverflowError, MemoryError)

#: Fault kinds exercised against every file section.
FAULT_KINDS = ("truncate", "flip", "zero")

INDEX_SECTIONS = (
    "prefix", "header_crc", "header", "count", "table_crc", "table", "blob",
)
STORE_SECTIONS = (
    "prefix", "header_crc", "header", "count", "tables_crc", "offsets",
    "record_crcs", "payload",
)


def _records(count: int = 8, length: int = 150, seed: int = 141):
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"fz{slot}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    records = _records()
    workdir = tmp_path_factory.mktemp("fuzz")
    index_path = workdir / "x.rpix"
    store_path = workdir / "x.rpsq"
    write_index(build_index(records, IndexParameters(interval_length=6)),
                index_path)
    write_store(records, store_path)
    return index_path.read_bytes(), store_path.read_bytes(), workdir


def _inject(path, span, kind):
    start, end = span
    if end <= start:
        pytest.skip("section empty in this artefact")
    middle = (start + end) // 2
    if kind == "truncate":
        faults.truncate_at(path, middle)
    elif kind == "flip":
        faults.flip_byte(path, min(middle, end - 1), mask=0x40)
    else:
        faults.zero_page(path, start, min(end - start, faults.PAGE_SIZE))


def _exercise_index(path):
    with DiskIndex(path) as index:
        for interval in index.interval_ids():
            index.docs_counts(interval)


def _exercise_store(path):
    with SequenceStore(path) as store:
        for ordinal in range(len(store)):
            store.codes(ordinal)


class TestIndexFaultMatrix:
    """Every section × every fault kind raises a typed error."""

    @pytest.mark.parametrize("section", INDEX_SECTIONS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_is_caught_as_typed_error(
        self, artefacts, tmp_path, section, kind
    ):
        index_bytes, _, _ = artefacts
        path = tmp_path / "hurt.rpix"
        path.write_bytes(index_bytes)
        span = faults.index_sections(path)[section]
        _inject(path, span, kind)
        expected = IndexFormatError if section == "prefix" else CorruptionError
        with pytest.raises(expected):
            _exercise_index(path)

    def test_pristine_control_passes(self, artefacts, tmp_path):
        index_bytes, _, _ = artefacts
        path = tmp_path / "fine.rpix"
        path.write_bytes(index_bytes)
        _exercise_index(path)
        with DiskIndex(path) as index:
            assert index.verify() == []


class TestStoreFaultMatrix:
    @pytest.mark.parametrize("section", STORE_SECTIONS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_is_caught_as_typed_error(
        self, artefacts, tmp_path, section, kind
    ):
        _, store_bytes, _ = artefacts
        path = tmp_path / "hurt.rpsq"
        path.write_bytes(store_bytes)
        span = faults.store_sections(path)[section]
        _inject(path, span, kind)
        expected = IndexFormatError if section == "prefix" else CorruptionError
        with pytest.raises(expected):
            _exercise_store(path)

    def test_pristine_control_passes(self, artefacts, tmp_path):
        _, store_bytes, _ = artefacts
        path = tmp_path / "fine.rpsq"
        path.write_bytes(store_bytes)
        _exercise_store(path)
        with SequenceStore(path) as store:
            assert store.verify() == []


@pytest.fixture()
def planted_db(tmp_path):
    """A database with two near-identical records and a query for them."""
    rng = np.random.default_rng(99)
    records = _records(10, 200, seed=7)
    shared = rng.integers(0, 4, 200, dtype=np.uint8)
    records[2] = Sequence("twin_a", shared.copy())
    records[5] = Sequence("twin_b", shared.copy())
    path = tmp_path / "planted.db"
    Database.create(
        records, path, params=IndexParameters(interval_length=6)
    ).close()
    query = Sequence("q", shared[20:120].copy())
    return path, query


class TestManifestFaults:
    def test_tampered_digest_detected(self, planted_db):
        path, _ = planted_db
        manifest = path / "manifest.json"
        text = manifest.read_text()
        import json

        loaded = json.loads(text)
        digest = loaded["checksums"]["intervals.rpix"]
        flipped = ("0" if digest[0] != "0" else "f") + digest[1:]
        manifest.write_text(text.replace(digest, flipped))
        report = Database.verify(path)
        assert not report.ok
        assert any("digest" in issue for issue in report.issues)
        with pytest.raises(CorruptionError):
            Database.open(path, verify="full")

    def test_truncated_manifest_rejected(self, planted_db):
        path, _ = planted_db
        manifest = path / "manifest.json"
        faults.truncate_at(manifest, manifest.stat().st_size // 2)
        with pytest.raises(IndexFormatError):
            Database.open(path)
        assert not Database.verify(path).ok

    def test_stale_file_behind_valid_manifest_detected(self, planted_db):
        """A file swapped after the manifest was written fails the digest."""
        path, _ = planted_db
        span = faults.index_sections(path / "intervals.rpix")["blob"]
        faults.flip_byte(path / "intervals.rpix", span[0], mask=0x20)
        report = Database.verify(path)
        assert not report.ok


class TestCorruptionPolicies:
    def _zero_blob(self, path):
        span = faults.index_sections(path / "intervals.rpix")["blob"]
        faults.zero_page(path / "intervals.rpix", span[0], span[1] - span[0])

    def test_raise_policy_propagates(self, planted_db):
        path, query = planted_db
        self._zero_blob(path)
        with Database.open(path) as db:
            with pytest.raises(CorruptionError):
                db.search(query)

    def test_skip_policy_quarantines_and_answers(self, planted_db):
        path, query = planted_db
        self._zero_blob(path)
        with Database.open(path, on_corruption="skip") as db:
            report = db.search(query)
        # Every posting list the query touched was quarantined; the
        # search still returns a (possibly empty) well-formed report.
        assert report.quarantined_intervals > 0
        assert report.hits == []

    def test_fallback_policy_answers_exhaustively(self, planted_db):
        path, query = planted_db
        self._zero_blob(path)
        with Database.open(path, on_corruption="fallback") as db:
            report = db.search(query)
        assert report.degraded
        found = {hit.identifier for hit in report.hits}
        assert {"twin_a", "twin_b"} <= found

    def test_skip_policy_quarantines_corrupt_record(self, planted_db):
        path, query = planted_db
        # Damage twin_a's record payload (ordinal 2) only.
        store_path = path / "sequences.rpsq"
        with SequenceStore(store_path) as pristine:
            start = pristine._payload_start + int(pristine._offsets[2])
        faults.flip_byte(store_path, start + 2, mask=0x10)
        with Database.open(path, on_corruption="skip") as db:
            report = db.search(query)
        assert report.quarantined_sequences >= 1
        found = {hit.identifier for hit in report.hits}
        assert "twin_b" in found
        assert "twin_a" not in found

    def test_unreadable_index_degrades_database(self, planted_db):
        path, query = planted_db
        span = faults.index_sections(path / "intervals.rpix")["header"]
        faults.zero_page(path / "intervals.rpix", span[0], span[1] - span[0])
        with pytest.raises(CorruptionError):
            Database.open(path)
        with Database.open(path, on_corruption="fallback") as db:
            assert db.degraded
            assert "DEGRADED" in db.describe()
            report = db.search(query)
            assert report.degraded
            found = {hit.identifier for hit in report.hits}
            assert {"twin_a", "twin_b"} <= found


class TestIndexCorruption:
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_flip_never_crashes_unexpectedly(
        self, artefacts, position, flip
    ):
        index_bytes, _, workdir = artefacts
        data = bytearray(index_bytes)
        data[position % len(data)] ^= flip
        path = workdir / "flip.rpix"
        path.write_bytes(bytes(data))
        try:
            with DiskIndex(path) as index:
                for interval in list(index.interval_ids())[:20]:
                    index.docs_counts(interval)
        except ALLOWED:
            pass

    @given(cut=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_crashes_unexpectedly(self, artefacts, cut):
        index_bytes, _, workdir = artefacts
        path = workdir / "cut.rpix"
        path.write_bytes(index_bytes[: cut % len(index_bytes)])
        try:
            with DiskIndex(path) as index:
                list(index.interval_ids())
        except ALLOWED:
            pass


class TestStoreCorruption:
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_flip_never_crashes_unexpectedly(
        self, artefacts, position, flip
    ):
        _, store_bytes, workdir = artefacts
        data = bytearray(store_bytes)
        data[position % len(data)] ^= flip
        path = workdir / "flip.rpsq"
        path.write_bytes(bytes(data))
        try:
            with SequenceStore(path) as store:
                for ordinal in range(len(store)):
                    store.codes(ordinal)
        except ALLOWED:
            pass


class TestDirectCodingCorruption:
    @given(
        payload=st.binary(min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash_unexpectedly(self, payload):
        try:
            decode_sequence(payload)
        except ALLOWED:
            pass

    @given(
        text=st.text(alphabet="ACGTN", min_size=1, max_size=60),
        position=st.integers(min_value=0, max_value=10**4),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=100, deadline=None)
    def test_flipped_payload_never_crashes_unexpectedly(
        self, text, position, flip
    ):
        from repro.sequences import alphabet

        payload = bytearray(encode_sequence(alphabet.encode(text)))
        payload[position % len(payload)] ^= flip
        try:
            decode_sequence(bytes(payload))
        except ALLOWED:
            pass

"""Unit tests for the exhaustive Smith-Waterman scanner."""

import numpy as np
import pytest

from repro.align.kernel import best_local_score
from repro.align.scoring import ScoringScheme
from repro.errors import SearchError
from repro.index.store import MemorySequenceSource
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(51)
    return [
        Sequence(f"e{slot}", rng.integers(0, 4, 200, dtype=np.uint8))
        for slot in range(15)
    ]


@pytest.fixture(scope="module")
def searcher(records):
    return ExhaustiveSearcher(records, max_query_length=128)


class TestConstruction:
    def test_accepts_plain_lists_and_sources(self, records):
        by_list = ExhaustiveSearcher(records, max_query_length=64)
        by_source = ExhaustiveSearcher(
            MemorySequenceSource(records), max_query_length=64
        )
        query = records[0].codes[:50]
        assert by_list.scores(query).tolist() == by_source.scores(query).tolist()

    def test_empty_collection_rejected(self):
        with pytest.raises(SearchError):
            ExhaustiveSearcher([])


class TestScores:
    def test_scores_match_pairwise_alignment(self, searcher, records):
        query = records[4].codes[30:110]
        scores = searcher.scores(query)
        scheme = ScoringScheme()
        expected = [
            best_local_score(query, record.codes, scheme) for record in records
        ]
        assert scores.tolist() == expected

    def test_scores_indexed_by_ordinal(self, searcher, records):
        query = records[9].codes[:80]
        scores = searcher.scores(query)
        assert int(np.argmax(scores)) == 9

    def test_long_query_triggers_image_rebuild(self, records):
        searcher = ExhaustiveSearcher(records, max_query_length=16)
        long_query = records[2].codes  # 200 bases > 16
        scores = searcher.scores(long_query)
        assert int(np.argmax(scores)) == 2
        assert searcher._image.max_query_length >= 200


class TestSearch:
    def test_examines_everything(self, searcher, records):
        report = searcher.search(records[0].codes[:60])
        assert report.candidates_examined == len(records)
        assert report.coarse_seconds == 0.0
        assert report.fine_seconds > 0.0

    def test_top_k_truncation_and_order(self, searcher, records):
        report = searcher.search(records[0].codes[:60], top_k=5)
        assert len(report.hits) <= 5
        scores = [hit.score for hit in report.hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_validation(self, searcher, records):
        with pytest.raises(SearchError):
            searcher.search(records[0].codes[:40], top_k=0)

    def test_min_score_excludes_weak_answers(self, records):
        strict = ExhaustiveSearcher(
            records, max_query_length=128, min_score=100
        )
        report = strict.search(records[3].codes[:60], top_k=15)
        assert all(hit.score >= 100 for hit in report.hits)

    def test_sequence_query_keeps_identifier(self, searcher, records):
        query = records[1].slice(0, 64)
        report = searcher.search(query)
        assert report.query_identifier == query.identifier

    def test_batch(self, searcher, records):
        queries = [records[0].slice(0, 64), records[1].slice(0, 64)]
        reports = searcher.search_batch(queries, top_k=3)
        assert [r.query_identifier for r in reports] == [
            q.identifier for q in queries
        ]

    def test_deterministic_tie_order_by_ordinal(self, records):
        # Two identical sequences must tie and order by ordinal.
        twins = [
            Sequence("t0", records[0].codes),
            Sequence("t1", records[0].codes),
        ]
        searcher = ExhaustiveSearcher(twins, max_query_length=64)
        report = searcher.search(records[0].codes[:50], top_k=2)
        assert [hit.ordinal for hit in report.hits] == [0, 1]
        assert report.hits[0].score == report.hits[1].score

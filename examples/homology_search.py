"""Homology search at (small) scale: partitioned vs. the rivals.

Generates a GenBank-like collection with planted homologous families,
then runs the same query set through all four engines and reports per-
engine wall-clock time and family recall — a miniature of the paper's
headline comparison (experiment E4).

Run with::

    python examples/homology_search.py [--sequences 400] [--queries 10]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    ExhaustiveSearcher,
    FastaLikeSearcher,
    BlastLikeSearcher,
    IndexParameters,
    MemorySequenceSource,
    PartitionedSearchEngine,
    WorkloadSpec,
    build_index,
    generate_collection,
    make_family_queries,
)
from repro.eval.metrics import recall_at


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=400)
    parser.add_argument("--queries", type=int, default=10)
    parser.add_argument("--mean-length", type=int, default=800)
    args = parser.parse_args()

    spec = WorkloadSpec(
        num_families=args.sequences // 20,
        family_size=4,
        num_background=args.sequences - 4 * (args.sequences // 20),
        mean_length=args.mean_length,
        seed=42,
    )
    collection = generate_collection(spec)
    records = list(collection.sequences)
    cases = make_family_queries(collection, args.queries, query_length=200)
    print(
        f"collection: {len(records)} sequences, "
        f"{collection.total_bases:,} bases; {len(cases)} queries\n"
    )

    print("building interval index (k=8)...")
    started = time.perf_counter()
    index = build_index(records, IndexParameters(interval_length=8))
    print(f"  built in {time.perf_counter() - started:.2f}s, "
          f"{index.compressed_bytes:,} posting bytes\n")

    source = MemorySequenceSource(records)
    engines = {
        "partitioned (cutoff=100)": PartitionedSearchEngine(
            index, source, coarse_cutoff=100
        ),
        "exhaustive smith-waterman": ExhaustiveSearcher(
            records, max_query_length=256
        ),
        "fasta-like diagonal scan": FastaLikeSearcher(records),
        "blast-like seed+extend": BlastLikeSearcher(records),
    }

    measurements = {}
    for name, engine in engines.items():
        started = time.perf_counter()
        recalls = []
        for case in cases:
            report = engine.search(case.query, top_k=10)
            recalls.append(recall_at(report.ordinals(), case.relevant, 10))
        elapsed = (time.perf_counter() - started) / len(cases)
        measurements[name] = (elapsed, sum(recalls) / len(recalls))

    exhaustive_time = measurements["exhaustive smith-waterman"][0]
    print(f"{'engine':<28} {'ms/query':>9} {'recall@10':>10} {'speedup':>8}")
    for name, (elapsed, recall) in measurements.items():
        print(
            f"{name:<28} {elapsed * 1000:>9.1f} {recall:>10.2f} "
            f"{exhaustive_time / elapsed:>7.1f}x"
        )

    print(
        "\nThe partitioned engine aligns only the coarse candidates, so its"
        "\nper-query cost is independent of collection size — the paper's"
        "\ncentral claim (it grows with the candidate volume instead)."
    )


if __name__ == "__main__":
    main()

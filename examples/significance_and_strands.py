"""Statistical significance, both-strand search, and frame fine search.

Shows the three query-evaluation refinements working together:

* E-values from calibrated Gumbel statistics separate real homology
  from chance alignments;
* both-strand search finds matches whose reverse complement is in the
  collection;
* the frame-restricted fine phase cuts alignment cost without changing
  the answers.

Run with::

    python examples/significance_and_strands.py
"""

from __future__ import annotations

import time

from repro import (
    IndexParameters,
    MemorySequenceSource,
    PartitionedSearchEngine,
    ScoringScheme,
    WorkloadSpec,
    build_index,
    generate_collection,
    make_family_queries,
)
from repro.align.statistics import calibrate_gapped, ungapped_lambda


def main() -> None:
    collection = generate_collection(
        WorkloadSpec(num_families=8, family_size=3, num_background=120,
                     mean_length=600, seed=21)
    )
    records = list(collection.sequences)
    index = build_index(records, IndexParameters(interval_length=8))
    source = MemorySequenceSource(records)
    cases = make_family_queries(collection, 3, query_length=180, seed=2)

    print("-- significance calibration --")
    scheme = ScoringScheme()
    lam = ungapped_lambda(scheme)
    print(f"ungapped Karlin-Altschul lambda: {lam:.4f} (exact)")
    params = calibrate_gapped(scheme, samples=60, seed=1)
    print(f"gapped Gumbel fit: lambda={params.lam:.4f} K={params.k:.4f} "
          "(empirical)\n")

    engine = PartitionedSearchEngine(
        index, source, coarse_cutoff=30,
        both_strands=True, significance=params,
    )

    print("-- forward query --")
    case = cases[0]
    report = engine.search(case.query, top_k=4)
    for hit in report.hits:
        marker = "*" if hit.ordinal in case.relevant else " "
        print(f" {marker} {hit.identifier:<12} strand={hit.strand} "
              f"score={hit.score:<5d} E={hit.evalue:.2e}")
    print("   (*) = true family member; note the E-value cliff between"
          "\n         homologs and chance-level answers\n")

    print("-- reverse-complement query (as sequencers often deliver) --")
    flipped = case.query.reverse_complement()
    report = engine.search(flipped, top_k=3)
    for hit in report.hits:
        print(f"   {hit.identifier:<12} strand={hit.strand} "
              f"score={hit.score:<5d} E={hit.evalue:.2e}")
    assert report.best().strand == "-"
    print("   found on the minus strand, same score as forward\n")

    print("-- frame-restricted fine phase --")
    full = PartitionedSearchEngine(index, source, coarse_cutoff=60)
    framed = PartitionedSearchEngine(
        index, source, coarse_cutoff=60, fine_mode="frames"
    )
    for name, candidate_engine in (("full", full), ("frames", framed)):
        started = time.perf_counter()
        for case in cases:
            candidate_engine.search(case.query, top_k=5)
        elapsed = (time.perf_counter() - started) / len(cases) * 1000
        best = candidate_engine.search(cases[0].query).best()
        print(f"   {name:<7} {elapsed:6.1f} ms/query  "
              f"best={best.identifier} score={best.score}")
    print("   same answers, fine phase pays only for the matching region")


if __name__ == "__main__":
    main()

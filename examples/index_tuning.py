"""Index tuning tour: interval length, stride, stopping, and cutoff.

Walks the index design space the paper explores and prints the size /
speed / recall consequences of each knob on one collection.

Run with::

    python examples/index_tuning.py
"""

from __future__ import annotations

import time

from repro import (
    IndexParameters,
    MemorySequenceSource,
    PartitionedSearchEngine,
    WorkloadSpec,
    build_index,
    collect_statistics,
    generate_collection,
    make_family_queries,
    stop_most_frequent,
)
from repro.eval.metrics import recall_at


def measure(engine, cases) -> tuple[float, float]:
    """(ms per query, mean family recall@10) for one engine."""
    started = time.perf_counter()
    recalls = [
        recall_at(
            engine.search(case.query, top_k=10).ordinals(), case.relevant, 10
        )
        for case in cases
    ]
    elapsed = (time.perf_counter() - started) / len(cases) * 1000
    return elapsed, sum(recalls) / len(recalls)


def main() -> None:
    collection = generate_collection(
        WorkloadSpec(num_families=15, family_size=4, num_background=240,
                     mean_length=600, seed=11)
    )
    records = list(collection.sequences)
    source = MemorySequenceSource(records)
    cases = make_family_queries(collection, 8, query_length=200)
    print(f"collection: {len(records)} sequences, "
          f"{collection.total_bases:,} bases\n")

    print("-- interval length (overlapping, cutoff=50) --")
    print(f"{'k':>3} {'vocab':>8} {'bytes':>10} {'bits/ptr':>9} "
          f"{'ms/query':>9} {'recall':>7}")
    for k in (6, 8, 10, 12):
        index = build_index(records, IndexParameters(interval_length=k))
        stats = collect_statistics(index)
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=50)
        per_query, recall = measure(engine, cases)
        print(f"{k:>3} {stats.vocabulary_size:>8} {stats.compressed_bytes:>10,}"
              f" {stats.bits_per_pointer:>9.1f} {per_query:>9.1f} {recall:>7.2f}")

    print("\n-- extraction stride at k=8 --")
    print(f"{'stride':>7} {'pointers':>9} {'bytes':>10} {'recall':>7}")
    for stride in (1, 2, 4, 8):
        index = build_index(
            records, IndexParameters(interval_length=8, stride=stride)
        )
        stats = collect_statistics(index)
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=50)
        _, recall = measure(engine, cases)
        print(f"{stride:>7} {stats.pointer_count:>9,} "
              f"{stats.compressed_bytes:>10,} {recall:>7.2f}")

    print("\n-- stopping the most frequent intervals (k=8, stride=1) --")
    base = build_index(records, IndexParameters(interval_length=8))
    print(f"{'stop %':>7} {'vocab':>8} {'bytes':>10} {'ms/query':>9} {'recall':>7}")
    for fraction in (0.0, 0.01, 0.05, 0.10):
        stopped, _ = stop_most_frequent(base, fraction)
        engine = PartitionedSearchEngine(stopped, source, coarse_cutoff=50)
        per_query, recall = measure(engine, cases)
        stats = collect_statistics(stopped)
        print(f"{fraction:>7.0%} {stats.vocabulary_size:>8} "
              f"{stats.compressed_bytes:>10,} {per_query:>9.1f} {recall:>7.2f}")

    print("\n-- coarse cutoff (k=8): the speed/accuracy dial --")
    print(f"{'cutoff':>7} {'ms/query':>9} {'recall':>7}")
    for cutoff in (5, 20, 50, 100, len(records)):
        engine = PartitionedSearchEngine(base, source, coarse_cutoff=cutoff)
        per_query, recall = measure(engine, cases)
        print(f"{cutoff:>7} {per_query:>9.1f} {recall:>7.2f}")


if __name__ == "__main__":
    main()

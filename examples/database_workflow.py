"""The Database facade: create once, search many times.

The one-object API a downstream user adopts: a persistent directory
holding the compressed index and sequence store, opened memory-mapped,
with engines, E-values, and alignments behind a single handle.

Run with::

    python examples/database_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Database, WorkloadSpec, generate_collection, make_family_queries


def main() -> None:
    collection = generate_collection(
        WorkloadSpec(num_families=6, family_size=3, num_background=80,
                     mean_length=500, seed=77)
    )
    cases = make_family_queries(collection, 2, query_length=160, seed=1)

    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "demo.db"

        # One call builds index + store and writes the manifest.
        database = Database.create(collection.sequences, path)
        print(database.describe())
        database.close()

        # Reopen (as a service would at startup) and query.
        with Database.open(path) as db:
            for case in cases:
                report = db.search(case.query, top_k=3, with_evalues=True)
                print(f"\nquery {report.query_identifier}:")
                for hit in report.hits:
                    marker = "*" if hit.ordinal in case.relevant else " "
                    print(f" {marker} {hit.identifier:<12} "
                          f"score={hit.score:<5d} E={hit.evalue:.2e}")

            # Pull the winning alignment for display.
            best = db.search(cases[0].query, top_k=1).best()
            print(f"\nalignment against {best.identifier}:")
            print(db.alignment(cases[0].query, best.ordinal).pretty(width=50))


if __name__ == "__main__":
    main()

"""Quickstart: index a small collection and run a similarity query.

Run with::

    python examples/quickstart.py
"""

from repro import (
    IndexParameters,
    MemorySequenceSource,
    PartitionedSearchEngine,
    Sequence,
    build_index,
    local_align,
)


def main() -> None:
    # A toy collection: three related globin-ish fragments and two
    # unrelated sequences.
    collection = [
        Sequence.from_text(
            "hbb_human",
            "ATGGTGCACCTGACTCCTGAGGAGAAGTCTGCCGTTACTGCCCTGTGGGGCAAGGTG"
            "AACGTGGATGAAGTTGGTGGTGAGGCCCTGGGCAG",
        ),
        Sequence.from_text(
            "hbb_chimp",
            "ATGGTGCACCTGACTCCTGAGGAGAAGTCTGCCGTTACTGCCCTGTGGGGCAAGGTG"
            "AACGTGGATGAAGTTGGTGGTGAGGCCCTGGGCAG",
        ),
        Sequence.from_text(
            "hbb_mouse",
            "ATGGTGCACCTGACTGATGCTGAGAAGTCTGCTGTCTCTTGCCTGTGGGCAAAGGTG"
            "AACCCCGATGAAGTTGGTGGTGAGGCCCTGGGCAG",
        ),
        Sequence.from_text(
            "noise_1",
            "TTGACAACCGGGATTTAAGCCCAGGCACTCGAGTTTACAAGTCGCGGGAATCTCTAT"
            "CCGGATCCGTGCAACTAGCAATTGGCACAAGCTAA",
        ),
        Sequence.from_text(
            "noise_2",
            "GGCATCTAAGTTCAGACCGAACTCCTATGTGACGATAGGGTCCTAACCAGTATTCGC"
            "TTACCCTGAGAGAAGCTTAGATCAAGGTCTCGCAT",
        ),
    ]

    # 1. Build the interval (k-mer) inverted index.
    index = build_index(collection, IndexParameters(interval_length=8))
    print(
        f"indexed {index.collection.num_sequences} sequences, "
        f"{index.vocabulary_size} distinct intervals, "
        f"{index.compressed_bytes} compressed posting bytes"
    )

    # 2. Wire up the partitioned engine: coarse index ranking + fine
    #    local-alignment re-ranking.
    engine = PartitionedSearchEngine(
        index, MemorySequenceSource(collection), coarse_cutoff=4
    )

    # 3. A query: a mutated fragment of the human sequence.
    query = Sequence.from_text(
        "mystery_read",
        "ATGGTGCACCTGACTCCTGAGGAGAAGTCTGCCGTTACTGCTCTGTGGGG",
    )
    report = engine.search(query, top_k=3)
    print(f"\nquery {report.query_identifier!r}: "
          f"{report.candidates_examined} candidates aligned, "
          f"{report.total_seconds * 1000:.1f} ms")
    for rank, hit in enumerate(report.hits, start=1):
        print(
            f"  {rank}. {hit.identifier:<12} alignment={hit.score:<4d} "
            f"coarse={hit.coarse_score:.0f}"
        )

    # 4. Inspect the winning alignment.
    best = report.best()
    alignment = local_align(query.codes, collection[best.ordinal].codes)
    print(f"\nbest alignment against {best.identifier}:")
    print(alignment.pretty())


if __name__ == "__main__":
    main()

"""External-memory pipeline: chunked build, disk parts, streamed merge.

The paper's collections (GenBank) did not fit in memory; the classic
recipe is to invert manageable chunks, write each part to disk, and
stream-merge the parts into the final index.  This example runs the
whole pipeline on synthetic data and verifies the merged index answers
queries identically to a single-shot build.

Run with::

    python examples/external_build.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    IndexParameters,
    MemorySequenceSource,
    PartitionedSearchEngine,
    WorkloadSpec,
    build_index,
    generate_collection,
    make_family_queries,
    read_index,
    read_store,
    write_index,
    write_store,
)
from repro.index.merge import merge_index_files


def main() -> None:
    collection = generate_collection(
        WorkloadSpec(num_families=10, family_size=3, num_background=170,
                     mean_length=500, seed=33)
    )
    records = list(collection.sequences)
    params = IndexParameters(interval_length=8)
    cases = make_family_queries(collection, 4, query_length=160, seed=1)
    chunk_size = 50

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)

        print(f"collection: {len(records)} sequences, "
              f"{collection.total_bases:,} bases; chunk size {chunk_size}\n")

        # 1. Invert each chunk independently ("what fits in memory") and
        #    spill it to disk.
        part_paths = []
        started = time.perf_counter()
        for slot, start in enumerate(range(0, len(records), chunk_size)):
            chunk = records[start : start + chunk_size]
            part = build_index(chunk, params)
            path = workdir / f"part{slot:02d}.rpix"
            size = write_index(part, path)
            part_paths.append(str(path))
            print(f"  part {slot}: {len(chunk)} sequences -> "
                  f"{size:,} bytes on disk")
        print(f"chunk inversion: {time.perf_counter() - started:.2f}s\n")

        # 2. Stream-merge the parts: peak memory is one posting list.
        merged_path = workdir / "merged.rpix"
        started = time.perf_counter()
        merged_size = merge_index_files(part_paths, str(merged_path))
        print(f"streamed merge -> {merged_size:,} bytes "
              f"({time.perf_counter() - started:.2f}s)\n")

        # 3. The sequence store completes the on-disk deployment.
        store_path = workdir / "merged.rpsq"
        write_store(records, store_path, coding="direct")

        # 4. Verify: the merged on-disk index answers exactly like a
        #    single-shot in-memory build.
        reference = PartitionedSearchEngine(
            build_index(records, params),
            MemorySequenceSource(records),
            coarse_cutoff=20,
        )
        with read_index(merged_path) as index, read_store(store_path) as store:
            engine = PartitionedSearchEngine(index, store, coarse_cutoff=20)
            print(f"{'query':<20} {'top answer':<14} {'score':>6} {'agrees':>7}")
            for case in cases:
                ours = engine.search(case.query, top_k=5)
                theirs = reference.search(case.query, top_k=5)
                agrees = [
                    (hit.ordinal, hit.score) for hit in ours.hits
                ] == [(hit.ordinal, hit.score) for hit in theirs.hits]
                best = ours.best()
                print(f"{case.query.identifier:<20} {best.identifier:<14} "
                      f"{best.score:>6} {'yes' if agrees else 'NO':>7}")
                assert agrees
        print("\nmerged on-disk index is answer-identical to the "
              "single-shot build")


if __name__ == "__main__":
    main()

"""Compression tour: integer codes on real posting gaps + direct coding.

Shows (1) how the integer-coding families compare on the gap
distributions an interval index actually produces, and (2) what the
cino-style direct sequence coding buys over ASCII storage.

Run with::

    python examples/compression_tour.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import IndexParameters, WorkloadSpec, build_index, generate_collection
from repro.compression import (
    EliasDeltaCodec,
    EliasGammaCodec,
    GolombCodec,
    UnaryCodec,
    VByteCodec,
    encode_sequence,
    measure,
)


def gather_document_gaps(index) -> list[int]:
    """The d-gap stream the index's doc codec actually sees."""
    gaps: list[int] = []
    for interval in index.interval_ids():
        docs, _ = index.docs_counts(interval)
        previous = -1
        for doc in docs.tolist():
            gaps.append(doc - previous - 1)
            previous = doc
    return gaps


def main() -> None:
    collection = generate_collection(
        WorkloadSpec(num_families=10, family_size=3, num_background=170,
                     mean_length=500, seed=8)
    )
    records = list(collection.sequences)
    index = build_index(records, IndexParameters(interval_length=8))
    gaps = gather_document_gaps(index)
    universe = index.collection.num_sequences
    print(f"{len(gaps):,} document gaps from a {universe}-sequence index "
          f"(mean gap {np.mean(gaps):.1f})\n")

    codecs = {
        "unary": UnaryCodec(),
        "elias gamma": EliasGammaCodec(),
        "elias delta": EliasDeltaCodec(),
        "golomb (derived b)": GolombCodec.for_density(
            max(1, len(gaps) // index.vocabulary_size or 1), universe
        ),
        "vbyte": VByteCodec(),
    }
    print(f"{'codec':<20} {'bits/gap':>9} {'encode ms':>10} {'decode ms':>10}")
    for name, codec in codecs.items():
        started = time.perf_counter()
        data = codec.encode_array(gaps)
        encode_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        decoded = codec.decode_array(data, len(gaps))
        decode_ms = (time.perf_counter() - started) * 1000
        assert decoded == gaps
        print(f"{name:<20} {8 * len(data) / len(gaps):>9.2f} "
              f"{encode_ms:>10.1f} {decode_ms:>10.1f}")

    print("\n-- direct sequence coding (cino) --")
    stats = measure([record.codes for record in records])
    ascii_bytes = sum(len(record) for record in records)
    coded_bytes = stats.compressed_bytes
    print(f"ASCII storage : {ascii_bytes:>9,} bytes (8.00 bits/base)")
    print(f"direct coding : {coded_bytes:>9,} bytes "
          f"({stats.bits_per_base:.2f} bits/base)")
    started = time.perf_counter()
    payloads = [encode_sequence(record.codes) for record in records]
    encode_s = time.perf_counter() - started
    from repro.compression import decode_sequence

    started = time.perf_counter()
    for payload in payloads:
        decode_sequence(payload)
    decode_s = time.perf_counter() - started
    print(f"encode {ascii_bytes / encode_s / 1e6:.0f} MB/s, "
          f"decode {ascii_bytes / decode_s / 1e6:.0f} MB/s "
          "(decode is the number that matters at query time)")


if __name__ == "__main__":
    main()

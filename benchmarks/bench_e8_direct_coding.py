"""E8 bench targets: direct (cino) sequence coding.

Times the codec itself and the end-to-end effect of store coding on
partitioned query evaluation.
"""

import pytest

from benchmarks import workload_setup as setup
from repro.compression.direct import decode_sequence, encode_sequence
from repro.index.store import read_store, write_store
from repro.search.engine import PartitionedSearchEngine


@pytest.fixture(scope="module")
def payloads():
    return [encode_sequence(record.codes) for record in setup.base_records()]


def test_encode_collection(benchmark):
    records = setup.base_records()

    def encode_all():
        return [encode_sequence(record.codes) for record in records]

    payloads = benchmark(encode_all)
    assert len(payloads) == len(records)


def test_decode_collection(benchmark, payloads):
    def decode_all():
        return [decode_sequence(payload) for payload in payloads]

    decoded = benchmark(decode_all)
    assert len(decoded) == len(payloads)


@pytest.mark.parametrize("coding", ["raw", "direct"])
def test_query_with_store_coding(benchmark, tmp_path_factory, coding):
    path = tmp_path_factory.mktemp("store") / f"{coding}.rpsq"
    write_store(list(setup.base_records()), path, coding=coding)
    case = setup.base_queries()[0]
    with read_store(path) as store:
        engine = PartitionedSearchEngine(
            setup.base_index(), store, coarse_cutoff=100
        )
        report = benchmark.pedantic(
            engine.search, args=(case.query,), rounds=5, iterations=1
        )
        benchmark.extra_info["coding"] = coding
        benchmark.extra_info["payload_bytes"] = store.payload_bytes
        assert report.best().ordinal == case.source_ordinal

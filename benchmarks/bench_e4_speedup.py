"""E4 bench targets: one query through every engine on the base
collection — the headline who-wins-by-how-much comparison."""

import pytest

from benchmarks import workload_setup as setup
from repro.search.blast_like import BlastLikeSearcher
from repro.search.fasta_like import FastaLikeSearcher


@pytest.fixture(scope="module")
def query():
    return setup.base_queries()[0].query


@pytest.fixture(scope="module")
def expected_best():
    return setup.base_queries()[0].source_ordinal


def test_partitioned_cutoff_50(benchmark, query, expected_best):
    engine = setup.base_engine(50)
    report = benchmark.pedantic(
        engine.search, args=(query,), rounds=5, iterations=1
    )
    assert report.best().ordinal == expected_best


def test_partitioned_cutoff_100(benchmark, query, expected_best):
    engine = setup.base_engine(100)
    report = benchmark.pedantic(
        engine.search, args=(query,), rounds=5, iterations=1
    )
    assert report.best().ordinal == expected_best


def test_exhaustive_smith_waterman(benchmark, query, expected_best):
    engine = setup.base_exhaustive()
    report = benchmark.pedantic(
        engine.search, args=(query,), rounds=3, iterations=1
    )
    assert report.best().ordinal == expected_best


@pytest.fixture(scope="module")
def fasta_engine():
    return FastaLikeSearcher(list(setup.base_records()))


@pytest.fixture(scope="module")
def blast_engine():
    return BlastLikeSearcher(list(setup.base_records()))


def test_fasta_like(benchmark, fasta_engine, query, expected_best):
    report = benchmark.pedantic(
        fasta_engine.search, args=(query,), rounds=2, iterations=1
    )
    assert report.best().ordinal == expected_best


def test_blast_like(benchmark, blast_engine, query, expected_best):
    report = benchmark.pedantic(
        blast_engine.search, args=(query,), rounds=3, iterations=1
    )
    assert report.best().ordinal == expected_best

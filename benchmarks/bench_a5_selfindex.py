"""A5 ablation bench: self-indexing (skip-pointer) posting lists.

Times candidate-restricted decoding against the full decode it
replaces, on a long list shaped like a frequent interval's.
"""

import numpy as np
import pytest

from repro.index.blocked import BlockedPostings
from repro.index.postings import PostingsContext

CONTEXT = PostingsContext(num_sequences=100_000, total_length=50_000_000)


@pytest.fixture(scope="module")
def long_list():
    rng = np.random.default_rng(17)
    docs = np.unique(rng.integers(0, 100_000, size=12_000)).astype(np.int64)
    counts = rng.integers(1, 6, size=docs.shape[0]).astype(np.int64)
    return docs, counts


@pytest.fixture(scope="module")
def encoded(long_list):
    docs, counts = long_list
    codec = BlockedPostings(block_size=64)
    return codec, codec.encode(docs, counts, CONTEXT), docs


def test_encode_long_list(benchmark, long_list):
    docs, counts = long_list
    codec = BlockedPostings(block_size=64)
    data = benchmark.pedantic(
        codec.encode, args=(docs, counts, CONTEXT), rounds=3, iterations=1
    )
    benchmark.extra_info["bits_per_pointer"] = round(
        8 * len(data) / docs.shape[0], 2
    )


def test_full_decode(benchmark, encoded):
    codec, data, docs = encoded
    out_docs, _ = benchmark.pedantic(
        codec.decode_all, args=(data, docs.shape[0], CONTEXT),
        rounds=3, iterations=1,
    )
    assert out_docs.shape[0] == docs.shape[0]


def test_candidate_decode_small_set(benchmark, encoded):
    codec, data, docs = encoded
    wanted = [int(docs[5]), int(docs[6000]), int(docs[-3])]
    found = benchmark.pedantic(
        codec.decode_candidates,
        args=(data, docs.shape[0], CONTEXT, wanted),
        rounds=5, iterations=1,
    )
    assert set(found) == set(wanted)

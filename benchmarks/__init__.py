"""Benchmark harness reproducing the paper's evaluation (E1-E8).

Two entry points:

* ``pytest benchmarks/ --benchmark-only`` — timed kernels per experiment
  via pytest-benchmark;
* ``python -m benchmarks.harness [E1 ... E8 | all]`` — regenerates every
  table/figure's rows (the numbers recorded in EXPERIMENTS.md).
"""

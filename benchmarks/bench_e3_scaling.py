"""E3 bench targets: query evaluation vs collection size.

The shape to look for in the results: exhaustive per-query time roughly
doubles with the collection, partitioned time stays near-flat.
"""

import pytest

from benchmarks import workload_setup as setup

SIZES = [100, 400]


@pytest.mark.parametrize("num_sequences", SIZES)
def test_partitioned_query(benchmark, num_sequences):
    _, engine, _, queries = setup.scaled_setup(num_sequences)
    query = queries[0].query
    report = benchmark.pedantic(
        engine.search, args=(query,), kwargs={"top_k": 10},
        rounds=5, iterations=1,
    )
    benchmark.extra_info["collection_sequences"] = num_sequences
    benchmark.extra_info["candidates"] = report.candidates_examined
    assert report.best() is not None


@pytest.mark.parametrize("num_sequences", SIZES)
def test_exhaustive_query(benchmark, num_sequences):
    _, _, exhaustive, queries = setup.scaled_setup(num_sequences)
    query = queries[0].query
    report = benchmark.pedantic(
        exhaustive.search, args=(query,), kwargs={"top_k": 10},
        rounds=3, iterations=1,
    )
    benchmark.extra_info["collection_sequences"] = num_sequences
    assert report.candidates_examined == num_sequences


@pytest.mark.parametrize("num_sequences", SIZES)
def test_coarse_phase_only(benchmark, num_sequences):
    from repro.search.coarse import CoarseRanker

    records, engine, _, queries = setup.scaled_setup(num_sequences)
    ranker = CoarseRanker(engine.index)
    candidates = benchmark.pedantic(
        ranker.rank, args=(queries[0].query.codes, 50),
        rounds=5, iterations=1,
    )
    assert candidates

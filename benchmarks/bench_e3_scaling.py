"""E3 bench targets: query evaluation vs collection size and shards.

The shape to look for in the results: exhaustive per-query time roughly
doubles with the collection, partitioned time stays near-flat.

Run as a script for the shard sweep (``python benchmarks/bench_e3_scaling.py
--output BENCH_shards.json``): per shard count it measures wall-clock
database build time with 1 worker vs N workers, mean query latency
through the sharded engine, and checks hit-for-hit parity against the
single-shard answers.
"""

import pytest

from benchmarks import workload_setup as setup

SIZES = [100, 400]


@pytest.mark.parametrize("num_sequences", SIZES)
def test_partitioned_query(benchmark, num_sequences):
    _, engine, _, queries = setup.scaled_setup(num_sequences)
    query = queries[0].query
    report = benchmark.pedantic(
        engine.search, args=(query,), kwargs={"top_k": 10},
        rounds=5, iterations=1,
    )
    benchmark.extra_info["collection_sequences"] = num_sequences
    benchmark.extra_info["candidates"] = report.candidates_examined
    assert report.best() is not None


@pytest.mark.parametrize("num_sequences", SIZES)
def test_exhaustive_query(benchmark, num_sequences):
    _, _, exhaustive, queries = setup.scaled_setup(num_sequences)
    query = queries[0].query
    report = benchmark.pedantic(
        exhaustive.search, args=(query,), kwargs={"top_k": 10},
        rounds=3, iterations=1,
    )
    benchmark.extra_info["collection_sequences"] = num_sequences
    assert report.candidates_examined == num_sequences


@pytest.mark.parametrize("num_sequences", SIZES)
def test_coarse_phase_only(benchmark, num_sequences):
    from repro.search.coarse import CoarseRanker

    records, engine, _, queries = setup.scaled_setup(num_sequences)
    ranker = CoarseRanker(engine.index)
    candidates = benchmark.pedantic(
        ranker.rank, args=(queries[0].query.codes, 50),
        rounds=5, iterations=1,
    )
    assert candidates


# -- shard sweep (script mode) ------------------------------------------


def _hit_key(report):
    return [(hit.ordinal, hit.score, hit.coarse_score) for hit in report.hits]


def run_shard_sweep(
    shard_counts, workers, num_sequences, num_queries, output
):
    """Build + query the same collection at several shard counts.

    Writes one JSON document: per shard count, build seconds with one
    worker and with ``workers`` workers (speedup = ratio), mean query
    latency, and whether every query's answers matched the one-shard
    baseline exactly.
    """
    import json
    import shutil
    import statistics
    import tempfile
    import time
    from pathlib import Path

    from repro.database import Database

    records, _, _, cases = setup.scaled_setup(num_sequences)
    records = list(records)
    queries = [case.query for case in cases[:num_queries]]
    results = []
    baseline_answers = None
    workdir = Path(tempfile.mkdtemp(prefix="bench_shards_"))
    try:
        for shards in shard_counts:
            row = {"shards": shards}
            for label, worker_count in (
                ("build_seconds_1_worker", 1),
                (f"build_seconds_{workers}_workers", workers),
            ):
                target = workdir / f"db_s{shards}_w{worker_count}"
                started = time.perf_counter()
                Database.create(
                    records, target, shards=shards, workers=worker_count
                ).close()
                row[label] = time.perf_counter() - started
            row["build_speedup"] = (
                row["build_seconds_1_worker"]
                / row[f"build_seconds_{workers}_workers"]
            )
            with Database.open(workdir / f"db_s{shards}_w{workers}") as db:
                latencies = []
                answers = []
                for query in queries:
                    started = time.perf_counter()
                    report = db.search(query, top_k=10)
                    latencies.append(time.perf_counter() - started)
                    answers.append(_hit_key(report))
                row["query_seconds_mean"] = statistics.mean(latencies)
            if baseline_answers is None:
                baseline_answers = answers
            row["parity_with_one_shard"] = answers == baseline_answers
            results.append(row)
            print(
                f"shards={shards}: build {row['build_seconds_1_worker']:.2f}s"
                f" -> {row[f'build_seconds_{workers}_workers']:.2f}s "
                f"({row['build_speedup']:.2f}x), "
                f"query {row['query_seconds_mean'] * 1000:.1f} ms, "
                f"parity={row['parity_with_one_shard']}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    import os

    document = {
        "experiment": "shard_sweep",
        "collection_sequences": len(records),
        "queries": len(queries),
        "workers": workers,
        # Build speedup is bounded by the cores actually available;
        # on a single-core host workers=N can only show overhead.
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    Path(output).write_text(json.dumps(document, indent=2))
    print(f"wrote {output}")
    return document


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker processes for the parallel build measurement",
    )
    parser.add_argument("--sequences", type=int, default=400)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("-o", "--output", default="BENCH_shards.json")
    args = parser.parse_args(argv)
    document = run_shard_sweep(
        args.shards, args.workers, args.sequences, args.queries, args.output
    )
    return 0 if all(
        row["parity_with_one_shard"] for row in document["results"]
    ) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""E2 bench targets: integer-codec encode/decode throughput on the
document-gap stream a real index produces."""

import pytest

from benchmarks import workload_setup as setup
from repro.compression import (
    EliasDeltaCodec,
    EliasGammaCodec,
    GolombCodec,
    RiceCodec,
    VByteCodec,
    optimal_golomb_parameter,
)

#: Gap-stream slice: large enough to be representative, small enough to
#: repeat many rounds.
GAP_COUNT = 40_000


@pytest.fixture(scope="module")
def gaps():
    stream = setup.document_gap_stream(setup.base_index())
    return stream[:GAP_COUNT]


@pytest.fixture(scope="module")
def codecs(gaps):
    universe = setup.base_collection().spec.num_sequences
    density = max(1, round(len(gaps) / setup.base_index().vocabulary_size))
    return {
        "gamma": EliasGammaCodec(),
        "delta": EliasDeltaCodec(),
        "golomb": GolombCodec(optimal_golomb_parameter(density, universe)),
        "rice": RiceCodec.for_density(density, universe),
        "vbyte": VByteCodec(),
    }


@pytest.mark.parametrize("name", ["gamma", "delta", "golomb", "rice", "vbyte"])
def test_encode_gaps(benchmark, gaps, codecs, name):
    codec = codecs[name]
    data = benchmark(codec.encode_array, gaps)
    benchmark.extra_info["bits_per_gap"] = round(8 * len(data) / len(gaps), 2)


@pytest.mark.parametrize("name", ["gamma", "delta", "golomb", "rice", "vbyte"])
def test_decode_gaps(benchmark, gaps, codecs, name):
    codec = codecs[name]
    data = codec.encode_array(gaps)
    decoded = benchmark(codec.decode_array, data, len(gaps))
    assert decoded == gaps


def test_golomb_beats_gamma_in_space(gaps, codecs):
    golomb_bytes = len(codecs["golomb"].encode_array(gaps))
    gamma_bytes = len(codecs["gamma"].encode_array(gaps))
    assert golomb_bytes < gamma_bytes

"""E6 bench targets: index stopping — the pass itself and its effect on
query time."""

import pytest

from benchmarks import workload_setup as setup
from repro.eval.metrics import recall_at
from repro.index.stopping import stop_most_frequent
from repro.search.engine import PartitionedSearchEngine


def test_stopping_pass_cost(benchmark):
    index = setup.base_index()
    stopped, report = benchmark(stop_most_frequent, index, 0.10)
    assert report.dropped_intervals > 0
    benchmark.extra_info["dropped_pointers"] = report.dropped_pointers


@pytest.mark.parametrize("fraction", [0.0, 0.10, 0.20])
def test_query_on_stopped_index(benchmark, fraction):
    stopped, _ = stop_most_frequent(setup.base_index(), fraction)
    engine = PartitionedSearchEngine(
        stopped, setup.base_source(), coarse_cutoff=50
    )
    case = setup.base_queries()[2]
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    recall = recall_at(report.ordinals(), case.relevant, 10)
    benchmark.extra_info["stopped_fraction"] = fraction
    benchmark.extra_info["recall_at_10"] = recall
    assert recall >= 0.5

"""Shared, cached workload construction for the benchmark suite.

Collections and indexes are expensive to build, so everything here is
memoised: the pytest-benchmark targets and the table harness share one
set of artefacts per process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.index.builder import IndexParameters, InvertedIndex, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.mutate import MutationModel
from repro.sequences.record import Sequence
from repro.workloads.queries import QueryCase, make_family_queries
from repro.workloads.synthetic import WorkloadSpec, generate_collection

#: The default evaluation collection: 1200 sequences, ~1 Mb — scaled
#: down from the paper's GenBank subsets (see DESIGN.md) but large
#: enough that every effect has room to show.
BASE_FAMILIES = 30
BASE_FAMILY_SIZE = 4
BASE_BACKGROUND = 1080
BASE_MEAN_LENGTH = 800
BASE_SEED = 1996

#: Query shape shared by the query-evaluation experiments.
QUERY_LENGTH = 200
NUM_QUERIES = 10


@lru_cache(maxsize=None)
def base_collection():
    """The default planted-family collection."""
    return generate_collection(
        WorkloadSpec(
            num_families=BASE_FAMILIES,
            family_size=BASE_FAMILY_SIZE,
            num_background=BASE_BACKGROUND,
            mean_length=BASE_MEAN_LENGTH,
            seed=BASE_SEED,
        )
    )


@lru_cache(maxsize=None)
def base_records() -> tuple[Sequence, ...]:
    return base_collection().sequences


@lru_cache(maxsize=None)
def base_source() -> MemorySequenceSource:
    return MemorySequenceSource(list(base_records()))


@lru_cache(maxsize=None)
def base_queries() -> tuple[QueryCase, ...]:
    return tuple(
        make_family_queries(
            base_collection(), NUM_QUERIES, query_length=QUERY_LENGTH, seed=7
        )
    )


@lru_cache(maxsize=None)
def diverged_queries(percent: int) -> tuple[QueryCase, ...]:
    """Query sets whose windows carry extra divergence (E7)."""
    mutation = MutationModel(percent / 100.0, 0.01, 0.01)
    return tuple(
        make_family_queries(
            base_collection(),
            NUM_QUERIES,
            query_length=QUERY_LENGTH,
            extra_mutation=mutation,
            seed=7,
        )
    )


@lru_cache(maxsize=None)
def base_index(
    interval_length: int = 8,
    stride: int = 1,
    include_positions: bool = True,
    doc_codec: str = "golomb",
    count_codec: str = "gamma",
    position_codec: str = "golomb",
) -> InvertedIndex:
    """A (cached) index over the base collection."""
    return build_index(
        list(base_records()),
        IndexParameters(
            interval_length=interval_length,
            stride=stride,
            include_positions=include_positions,
            doc_codec=doc_codec,
            count_codec=count_codec,
            position_codec=position_codec,
        ),
    )


@lru_cache(maxsize=None)
def base_engine(coarse_cutoff: int = 100) -> PartitionedSearchEngine:
    return PartitionedSearchEngine(
        base_index(), base_source(), coarse_cutoff=coarse_cutoff
    )


@lru_cache(maxsize=None)
def frames_engine(coarse_cutoff: int = 100) -> PartitionedSearchEngine:
    """The frame-restricted fine-phase variant (ablation A4)."""
    return PartitionedSearchEngine(
        base_index(),
        base_source(),
        coarse_cutoff=coarse_cutoff,
        fine_mode="frames",
    )


@lru_cache(maxsize=None)
def base_exhaustive() -> ExhaustiveSearcher:
    return ExhaustiveSearcher(
        base_source(), max_query_length=QUERY_LENGTH + 64
    )


@lru_cache(maxsize=None)
def scaled_collection(num_sequences: int):
    """Collections of increasing size for the E3 scaling figure.

    Family structure is kept proportional so the query workload's
    difficulty is constant as the collection grows.
    """
    families = max(2, num_sequences // 25)
    return generate_collection(
        WorkloadSpec(
            num_families=families,
            family_size=4,
            num_background=num_sequences - 4 * families,
            mean_length=BASE_MEAN_LENGTH,
            seed=BASE_SEED + num_sequences,
        )
    )


@lru_cache(maxsize=None)
def scaled_setup(num_sequences: int):
    """(records, engine, exhaustive, queries) for one E3 size point."""
    collection = scaled_collection(num_sequences)
    records = list(collection.sequences)
    source = MemorySequenceSource(records)
    index = build_index(records, IndexParameters(interval_length=8))
    engine = PartitionedSearchEngine(index, source, coarse_cutoff=50)
    exhaustive = ExhaustiveSearcher(source, max_query_length=QUERY_LENGTH + 64)
    queries = make_family_queries(
        collection, 5, query_length=QUERY_LENGTH, seed=3
    )
    return records, engine, exhaustive, queries


def document_gap_stream(index: InvertedIndex) -> list[int]:
    """Every document gap the index's doc codec encodes, in order (E2)."""
    gaps: list[int] = []
    for interval in index.interval_ids():
        docs, _ = index.docs_counts(interval)
        previous = -1
        for doc in docs.tolist():
            gaps.append(doc - previous - 1)
            previous = doc
    return gaps

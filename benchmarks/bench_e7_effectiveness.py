"""E7 bench targets: diverged-query evaluation.

Accuracy columns come from the harness; the timed kernel here is the
partitioned engine on queries of increasing divergence (more divergence
means fewer interval hits, so the coarse phase has less to chew on and
the candidate mix shifts).
"""

import pytest

from benchmarks import workload_setup as setup


@pytest.mark.parametrize("percent", [5, 20, 40])
def test_diverged_query(benchmark, percent):
    case = setup.diverged_queries(percent)[0]
    engine = setup.base_engine(50)
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    benchmark.extra_info["divergence_percent"] = percent
    benchmark.extra_info["answers"] = len(report.hits)


def test_oracle_scan_on_diverged_query(benchmark):
    case = setup.diverged_queries(20)[0]
    exhaustive = setup.base_exhaustive()
    report = benchmark.pedantic(
        exhaustive.search, args=(case.query,), rounds=3, iterations=1
    )
    assert report.candidates_examined == len(setup.base_records())

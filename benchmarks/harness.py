"""Table harness: regenerates every experiment's rows (E1-E8).

Run all experiments (five to ten minutes)::

    python -m benchmarks.harness

or a subset::

    python -m benchmarks.harness E1 E4

Each function returns a :class:`Table`; the printed output is what
EXPERIMENTS.md records as "measured".
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from benchmarks import workload_setup as setup
from repro.compression import (
    EliasDeltaCodec,
    EliasGammaCodec,
    GolombCodec,
    RiceCodec,
    VByteCodec,
    optimal_golomb_parameter,
)
from repro.compression.direct import measure as measure_direct
from repro.eval.ground_truth import compute_ground_truth
from repro.eval.metrics import (
    average_precision,
    ranking_overlap,
    recall_at,
)
from repro.index.statistics import collect_statistics
from repro.index.stopping import stop_most_frequent
from repro.search.blast_like import BlastLikeSearcher
from repro.search.engine import PartitionedSearchEngine
from repro.search.fasta_like import FastaLikeSearcher


@dataclass(frozen=True)
class Table:
    """One experiment's regenerated table."""

    experiment: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    note: str = ""

    def render_markdown(self) -> str:
        """The table as GitHub-flavoured markdown."""
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
        if self.note:
            lines.append("")
            lines.append(f"*{self.note}*")
        return "\n".join(lines)

    def render(self) -> str:
        widths = [
            max(len(str(column)), *(len(_cell(row[i])) for row in self.rows))
            if self.rows
            else len(str(column))
            for i, column in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths))
        )
        for row in self.rows:
            lines.append(
                "  ".join(_cell(v).rjust(w) for v, w in zip(row, widths))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _mean_query_seconds(engine, cases, repeat: int = 1) -> float:
    started = time.perf_counter()
    for _ in range(repeat):
        for case in cases:
            engine.search(case.query, top_k=10)
    return (time.perf_counter() - started) / (repeat * len(cases))


def _mean_recall(engine, cases, cutoff: int = 10) -> float:
    return float(
        np.mean(
            [
                recall_at(
                    engine.search(case.query, top_k=cutoff).ordinals(),
                    case.relevant,
                    cutoff,
                )
                for case in cases
            ]
        )
    )


def experiment_e1() -> Table:
    """Index size vs. interval length (and A1: overlap vs. skip)."""
    rows = []
    total_bases = setup.base_collection().total_bases
    configurations = [(k, 1) for k in (4, 6, 8, 10, 12)] + [(8, 8)]
    for interval_length, stride in configurations:
        index = setup.base_index(interval_length=interval_length, stride=stride)
        stats = collect_statistics(index)
        mode = "overlap" if stride == 1 else "non-overlap"
        rows.append(
            (
                interval_length,
                mode,
                stats.vocabulary_size,
                stats.pointer_count,
                stats.compressed_bytes,
                stats.bits_per_pointer,
                stats.compressed_bytes / total_bases,
                stats.compression_ratio,
            )
        )
    return Table(
        "E1",
        "index size vs interval length",
        ("k", "mode", "vocab", "pointers", "bytes", "bits/ptr",
         "bytes/base", "vs-flat"),
        tuple(rows),
        note=f"collection: {total_bases} bases; flat record = 8B/pointer + "
        "4B/offset",
    )


def experiment_e2() -> Table:
    """Integer-coding comparison on the index's document gaps (and A2)."""
    gaps = setup.document_gap_stream(setup.base_index())
    universe = setup.base_collection().spec.num_sequences
    global_b = optimal_golomb_parameter(
        max(1, round(len(gaps) / setup.base_index().vocabulary_size)), universe
    )
    codecs = [
        ("gamma", EliasGammaCodec()),
        ("delta", EliasDeltaCodec()),
        (f"golomb(b={global_b})", GolombCodec(global_b)),
        ("rice", RiceCodec.for_density(
            max(1, round(len(gaps) / setup.base_index().vocabulary_size)),
            universe,
        )),
        ("vbyte", VByteCodec()),
    ]
    rows = []
    for name, codec in codecs:
        started = time.perf_counter()
        data = codec.encode_array(gaps)
        encode_seconds = time.perf_counter() - started
        started = time.perf_counter()
        decoded = codec.decode_array(data, len(gaps))
        decode_seconds = time.perf_counter() - started
        assert decoded == gaps
        rows.append(
            (
                name,
                8.0 * len(data) / len(gaps),
                len(gaps) / encode_seconds / 1e6,
                len(gaps) / decode_seconds / 1e6,
            )
        )
    # A2: per-list derived Golomb parameters (what the index really does)
    # against the single global parameter above.
    index = setup.base_index()
    per_list_bits = 0
    for interval in index.interval_ids():
        entry = index.lookup_entry(interval)
        docs, _ = index.docs_counts(interval)
        codec = GolombCodec(optimal_golomb_parameter(entry.df, universe))
        previous = -1
        for doc in docs.tolist():
            per_list_bits += codec.code_length(doc - previous - 1)
            previous = doc
    rows.append(("golomb(per-list b)", per_list_bits / len(gaps), 0.0, 0.0))
    return Table(
        "E2",
        "integer codes on document gaps",
        ("codec", "bits/gap", "enc Mgaps/s", "dec Mgaps/s"),
        tuple(rows),
        note=f"{len(gaps)} gaps over a {universe}-sequence universe; "
        "per-list row reports size only",
    )


def experiment_e3() -> Table:
    """Query time vs collection size: partitioned vs exhaustive."""
    rows = []
    for num_sequences in (150, 300, 600, 1200):
        records, engine, exhaustive, queries = setup.scaled_setup(num_sequences)
        bases = sum(len(record) for record in records)
        partitioned_seconds = _mean_query_seconds(engine, queries)
        exhaustive_seconds = _mean_query_seconds(exhaustive, queries)
        rows.append(
            (
                num_sequences,
                bases,
                partitioned_seconds * 1000,
                exhaustive_seconds * 1000,
                exhaustive_seconds / partitioned_seconds,
            )
        )
    return Table(
        "E3",
        "query time vs collection size (cutoff=50)",
        ("seqs", "bases", "part ms/q", "exh ms/q", "speedup"),
        tuple(rows),
        note="exhaustive cost grows linearly with the collection; "
        "partitioned cost tracks the (fixed) candidate volume",
    )


def experiment_e4() -> Table:
    """Speedup over exhaustive search on the base collection."""
    cases = setup.base_queries()
    engines = [
        ("partitioned c=50", setup.base_engine(50)),
        ("partitioned c=100", setup.base_engine(100)),
        ("part. frames c=50", setup.frames_engine(50)),
        ("part. frames c=100", setup.frames_engine(100)),
        ("exhaustive SW", setup.base_exhaustive()),
        ("fasta-like", FastaLikeSearcher(list(setup.base_records()))),
        ("blast-like", BlastLikeSearcher(list(setup.base_records()))),
    ]
    measured = []
    for name, engine in engines:
        seconds = _mean_query_seconds(engine, cases)
        recall = _mean_recall(engine, cases)
        measured.append((name, seconds, recall))
    exhaustive_seconds = next(
        seconds for name, seconds, _ in measured if name == "exhaustive SW"
    )
    rows = tuple(
        (name, seconds * 1000, recall, exhaustive_seconds / seconds)
        for name, seconds, recall in measured
    )
    return Table(
        "E4",
        "engines on the base collection",
        ("engine", "ms/query", "recall@10", "speedup"),
        rows,
        note="recall against planted family truth; speedup vs exhaustive SW",
    )


def experiment_e5() -> Table:
    """Accuracy vs candidates examined (and A3: scorer variants)."""
    cases = setup.base_queries()
    oracle = compute_ground_truth(
        setup.base_exhaustive(), [case.query for case in cases]
    )
    rows = []
    collection_size = len(setup.base_records())
    for cutoff in (5, 10, 25, 50, 100, 300, collection_size):
        engine = setup.base_engine(cutoff)
        seconds = _mean_query_seconds(engine, cases)
        recall = _mean_recall(engine, cases)
        overlaps_ten = []
        overlaps_three = []
        for case, truth in zip(cases, oracle.truths):
            ranking = engine.search(case.query, top_k=10).ordinals()
            overlaps_ten.append(ranking_overlap(ranking, truth.top(10), 10))
            overlaps_three.append(ranking_overlap(ranking, truth.top(3), 3))
        rows.append(
            (
                "count",
                cutoff,
                seconds * 1000,
                recall,
                float(np.mean(overlaps_three)),
                float(np.mean(overlaps_ten)),
            )
        )
    for scorer in ("idf", "normalised", "diagonal"):
        engine = PartitionedSearchEngine(
            setup.base_index(),
            setup.base_source(),
            coarse_scorer=scorer,
            coarse_cutoff=25,
        )
        seconds = _mean_query_seconds(engine, cases)
        recall = _mean_recall(engine, cases)
        overlaps_ten = []
        overlaps_three = []
        for case, truth in zip(cases, oracle.truths):
            ranking = engine.search(case.query, top_k=10).ordinals()
            overlaps_ten.append(ranking_overlap(ranking, truth.top(10), 10))
            overlaps_three.append(ranking_overlap(ranking, truth.top(3), 3))
        rows.append(
            (scorer, 25, seconds * 1000, recall,
             float(np.mean(overlaps_three)), float(np.mean(overlaps_ten)))
        )
    return Table(
        "E5",
        "accuracy vs coarse cutoff",
        ("scorer", "cutoff", "ms/query", "recall@10", "oracle@3", "oracle@10"),
        tuple(rows),
        note="oracle@n: overlap with the exhaustive-SW top n; the top-3 "
        "answers are the strong ones, the top-10 tail is mostly noise "
        "that may share no interval with the query",
    )


def experiment_e6() -> Table:
    """Index stopping: size saved vs effectiveness lost."""
    cases = setup.base_queries()
    base = setup.base_index()
    base_bytes = collect_statistics(base).compressed_bytes
    rows = []
    for fraction in (0.0, 0.01, 0.05, 0.10, 0.20):
        stopped, report = stop_most_frequent(base, fraction)
        engine = PartitionedSearchEngine(
            stopped, setup.base_source(), coarse_cutoff=50
        )
        seconds = _mean_query_seconds(engine, cases)
        recall = _mean_recall(engine, cases)
        stats = collect_statistics(stopped)
        rows.append(
            (
                f"{fraction:.0%}",
                stats.vocabulary_size,
                stats.compressed_bytes,
                1.0 - stats.compressed_bytes / base_bytes,
                seconds * 1000,
                recall,
            )
        )
    return Table(
        "E6",
        "index stopping (drop most frequent intervals)",
        ("stopped", "vocab", "bytes", "saved", "ms/query", "recall@10"),
        tuple(rows),
    )


def experiment_e7() -> Table:
    """Effectiveness vs query divergence, against the exhaustive oracle."""
    def evaluate(engine, cases):
        recalls = []
        precisions = []
        for case in cases:
            ranking = engine.search(case.query, top_k=50).ordinals()
            recalls.append(recall_at(ranking, case.relevant, 10))
            precisions.append(average_precision(ranking, case.relevant))
        return float(np.mean(recalls)), float(np.mean(precisions))

    rows = []
    for percent in (5, 10, 20, 30, 40):
        cases = setup.diverged_queries(percent)
        partitioned_recall, partitioned_ap = evaluate(
            setup.base_engine(50), cases
        )
        exhaustive_recall, exhaustive_ap = evaluate(
            setup.base_exhaustive(), cases
        )
        rows.append(
            (
                f"{percent}%",
                partitioned_recall,
                exhaustive_recall,
                partitioned_ap,
                exhaustive_ap,
            )
        )
    return Table(
        "E7",
        "effectiveness vs query divergence (partitioned vs oracle)",
        ("divergence", "part R@10", "exh R@10", "part AP", "exh AP"),
        tuple(rows),
        note="relevance = planted family membership; cutoff=50",
    )


def experiment_e8() -> Table:
    """Direct sequence coding: space and end-to-end search effect."""
    import os
    import tempfile

    from repro.index.store import read_store, write_store

    records = list(setup.base_records())
    cases = setup.base_queries()
    stats = measure_direct([record.codes for record in records])
    total_bases = sum(len(record) for record in records)
    rows = [
        ("ascii", 8.0, int(total_bases), "-"),
        (
            "direct (cino)",
            stats.bits_per_base,
            int(stats.compressed_bytes),
            "-",
        ),
    ]
    with tempfile.TemporaryDirectory() as workdir:
        for coding in ("raw", "direct"):
            path = os.path.join(workdir, f"{coding}.rpsq")
            write_store(records, path, coding=coding)
            with read_store(path) as store:
                engine = PartitionedSearchEngine(
                    setup.base_index(), store, coarse_cutoff=100
                )
                seconds = _mean_query_seconds(engine, cases, repeat=2)
                rows.append(
                    (
                        f"store:{coding}",
                        8.0 if coding == "raw" else stats.bits_per_base,
                        int(store.payload_bytes),
                        f"{seconds * 1000:.1f}",
                    )
                )
    return Table(
        "E8",
        "direct coding of the sequence store",
        ("representation", "bits/base", "bytes", "query ms (c=100)"),
        tuple(rows),
        note="store-backed rows measure end-to-end partitioned search "
        "fetching candidates from the on-disk store",
    )


def experiment_e7b() -> Table:
    """11-point interpolated recall-precision curves (the paper's
    effectiveness figure) at 10% query divergence."""
    from repro.eval.metrics import eleven_point_interpolated, mean_eleven_point

    cases = setup.diverged_queries(10)
    curves = {}
    for name, engine in (
        ("partitioned", setup.base_engine(50)),
        ("exhaustive", setup.base_exhaustive()),
    ):
        per_query = [
            eleven_point_interpolated(
                engine.search(case.query, top_k=50).ordinals(), case.relevant
            )
            for case in cases
        ]
        curves[name] = mean_eleven_point(per_query)
    rows = tuple(
        (
            f"{level / 10:.1f}",
            curves["partitioned"][level],
            curves["exhaustive"][level],
        )
        for level in range(11)
    )
    return Table(
        "E7B",
        "11-point interpolated recall-precision (10% divergence)",
        ("recall", "partitioned P", "exhaustive P"),
        rows,
        note="mean interpolated precision over the query set; "
        "relevance = planted family membership",
    )


def experiment_profile() -> Table:
    """Instrumented profile of the base workload -> BENCH_profile.json.

    Runs the base partitioned engine with the observability layer
    attached (decode cache on, two passes so the cache sees repeats)
    and writes the resulting :class:`ProfileSnapshot` next to the other
    BENCH artifacts, so the perf trajectory and CI both pick it up.
    """
    from repro.instrumentation.profiling import (
        DEFAULT_PROFILE_NAME,
        profile_search,
    )

    cases = setup.base_queries()
    index = setup.base_index()
    index.enable_decode_cache(4096)
    engine = PartitionedSearchEngine(
        index, setup.base_source(), coarse_cutoff=50
    )
    snapshot = profile_search(
        engine,
        [case.query for case in cases],
        top_k=10,
        repeat=2,
        meta={"workload": "base", "cutoff": 50, "decode_cache": 4096},
    )
    snapshot.write(DEFAULT_PROFILE_NAME)
    rows = [
        ("queries", snapshot.queries),
        ("throughput q/s", snapshot.throughput_qps),
        (
            "decode-cache hit rate",
            snapshot.decode_cache["hit_rate"]
            if snapshot.decode_cache["hit_rate"] is not None
            else "n/a",
        ),
    ]
    for name, phase in sorted(snapshot.phases.items()):
        rows.append((f"{name} p50 ms", phase["p50_ms"]))
        rows.append((f"{name} p99 ms", phase["p99_ms"]))
    return Table(
        "PROFILE",
        "instrumented base workload",
        ("metric", "value"),
        tuple(rows),
        note=f"full snapshot written to {DEFAULT_PROFILE_NAME}",
    )


EXPERIMENTS: dict[str, Callable[[], Table]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E7B": experiment_e7b,
    "E8": experiment_e8,
    "PROFILE": experiment_profile,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Print the requested experiment tables (default: all).

    Pass ``--markdown`` to emit GitHub tables (for EXPERIMENTS.md).
    """
    names = list(argv if argv is not None else sys.argv[1:])
    markdown = "--markdown" in names
    names = [name for name in names if name != "--markdown"]
    if not names or names == ["all"]:
        names = list(EXPERIMENTS)
    for name in names:
        experiment = EXPERIMENTS.get(name.upper())
        if experiment is None:
            print(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}")
            return 1
        started = time.perf_counter()
        table = experiment()
        print(table.render_markdown() if markdown else table.render())
        if not markdown:
            print(f"({time.perf_counter() - started:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

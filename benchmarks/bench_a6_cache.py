"""A6 ablation bench: the opt-in postings decode cache.

A long-running service sees the same hot intervals across queries;
caching decoded section-A lists trades memory for coarse-phase CPU.
Timing experiments elsewhere keep the cache off (it would hide the
real decode cost); this bench prices what turning it on buys.
"""

import pytest

from benchmarks import workload_setup as setup
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine


@pytest.fixture(scope="module")
def fresh_setup():
    """A private index/engine so caching cannot leak into other benches."""
    records = list(setup.base_records())
    index = build_index(records, IndexParameters(interval_length=8))
    source = MemorySequenceSource(records)
    return index, source


def test_query_cold_decode(benchmark, fresh_setup):
    index, source = fresh_setup
    index.disable_decode_cache()
    engine = PartitionedSearchEngine(index, source, coarse_cutoff=50)
    case = setup.base_queries()[0]
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    assert report.best().ordinal == case.source_ordinal


def test_query_warm_decode_cache(benchmark, fresh_setup):
    index, source = fresh_setup
    index.enable_decode_cache(100_000)
    engine = PartitionedSearchEngine(index, source, coarse_cutoff=50)
    case = setup.base_queries()[0]
    engine.search(case.query)  # warm the hot lists
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    index.disable_decode_cache()
    assert report.best().ordinal == case.source_ordinal

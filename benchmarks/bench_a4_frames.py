"""A4 ablation bench: frame-restricted vs whole-candidate fine search,
and the both-strand surcharge."""

import pytest

from benchmarks import workload_setup as setup
from repro.search.engine import PartitionedSearchEngine


@pytest.fixture(scope="module")
def case():
    return setup.base_queries()[0]


def test_full_fine_phase(benchmark, case):
    engine = setup.base_engine(100)
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    assert report.best().ordinal == case.source_ordinal


def test_frames_fine_phase(benchmark, case):
    engine = setup.frames_engine(100)
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=5, iterations=1
    )
    assert report.best().ordinal == case.source_ordinal
    assert report.best().score == setup.base_engine(100).search(
        case.query
    ).best().score


def test_both_strands_surcharge(benchmark, case):
    engine = PartitionedSearchEngine(
        setup.base_index(),
        setup.base_source(),
        coarse_cutoff=100,
        both_strands=True,
    )
    report = benchmark.pedantic(
        engine.search, args=(case.query,), rounds=3, iterations=1
    )
    assert report.best().ordinal == case.source_ordinal
    assert report.best().strand == "+"
